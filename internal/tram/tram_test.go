package tram

import (
	"sync"
	"testing"
	"testing/quick"

	"acic/internal/netsim"
)

type item struct {
	dst int
	val int
}

func topo2x2x3() netsim.Topology {
	return netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 3}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{WW: "WW", WP: "WP", PW: "PW", PP: "PP"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](netsim.Topology{}, WP, 10); err == nil {
		t.Error("invalid topology accepted")
	}
	if _, err := New[int](topo2x2x3(), WP, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New[int](topo2x2x3(), Mode(9), 10); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestBufferSetCounts(t *testing.T) {
	topo := topo2x2x3() // 12 PEs, 4 processes
	cases := []struct {
		mode Mode
		want int // sets × destinations
	}{
		{WW, 12 * 12},
		{WP, 12 * 4},
		{PW, 4 * 12},
		{PP, 4 * 4},
	}
	for _, c := range cases {
		m, err := New[int](topo, c.mode, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.NumBuffers(); got != c.want {
			t.Errorf("%v: NumBuffers = %d, want %d", c.mode, got, c.want)
		}
	}
}

func TestAutoFlushAtCapacity(t *testing.T) {
	for _, mode := range []Mode{WW, WP, PW, PP} {
		m, err := New[item](topo2x2x3(), mode, 4)
		if err != nil {
			t.Fatal(err)
		}
		var batch *Batch[item]
		for i := 0; i < 4; i++ {
			b := m.Insert(0, 7, item{7, i})
			if i < 3 && b != nil {
				t.Fatalf("%v: flushed early at insert %d", mode, i)
			}
			if i == 3 {
				batch = b
			}
		}
		if batch == nil {
			t.Fatalf("%v: no auto flush at capacity", mode)
		}
		if len(batch.Items) != 4 {
			t.Fatalf("%v: batch has %d items, want 4", mode, len(batch.Items))
		}
		if batch.SrcPE != 0 {
			t.Fatalf("%v: SrcPE = %d", mode, batch.SrcPE)
		}
		// After flush the buffer is empty again.
		if m.PendingInSet(0) != 0 {
			t.Fatalf("%v: pending after flush = %d", mode, m.PendingInSet(0))
		}
	}
}

func TestDeliveryTargetByMode(t *testing.T) {
	topo := topo2x2x3()
	// Destination PE 7 lives in process 2 (PEs 6,7,8).
	for _, c := range []struct {
		mode       Mode
		exactPE    bool
		procOfDest int
	}{
		{WW, true, 2}, {PW, true, 2}, {WP, false, 2}, {PP, false, 2},
	} {
		m, err := New[item](topo, c.mode, 2)
		if err != nil {
			t.Fatal(err)
		}
		m.Insert(0, 7, item{})
		b := m.Insert(0, 7, item{})
		if b == nil {
			t.Fatalf("%v: expected flush", c.mode)
		}
		if c.exactPE {
			if b.DestPE != 7 {
				t.Errorf("%v: DestPE = %d, want 7", c.mode, b.DestPE)
			}
		} else if topo.ProcessOf(b.DestPE) != c.procOfDest {
			t.Errorf("%v: DestPE %d not in process %d", c.mode, b.DestPE, c.procOfDest)
		}
	}
}

func TestProcessGranularityMixesDestinations(t *testing.T) {
	// Under WP, items for PEs 6 and 8 (same process) share one buffer.
	m, err := New[item](topo2x2x3(), WP, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(0, 6, item{dst: 6})
	m.Insert(0, 8, item{dst: 8})
	b := m.Insert(0, 7, item{dst: 7})
	if b == nil {
		t.Fatal("expected flush after 3 inserts to one process")
	}
	if len(b.Items) != 3 {
		t.Fatalf("batch size = %d, want 3", len(b.Items))
	}
}

func TestWorkerGranularitySeparatesDestinations(t *testing.T) {
	// Under WW, items for PEs 6 and 8 use distinct buffers.
	m, err := New[item](topo2x2x3(), WW, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b := m.Insert(0, 6, item{}); b != nil {
		t.Fatal("unexpected flush")
	}
	if b := m.Insert(0, 8, item{}); b != nil {
		t.Fatal("unexpected flush — destinations share a buffer under WW?")
	}
	if m.PendingInSet(0) != 2 {
		t.Fatalf("pending = %d", m.PendingInSet(0))
	}
}

func TestManualFlush(t *testing.T) {
	m, err := New[item](topo2x2x3(), WP, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(2, 0, item{val: 1})
	m.Insert(2, 6, item{val: 2})
	m.Insert(2, 9, item{val: 3})
	batches := m.FlushSet(2)
	total := 0
	for _, b := range batches {
		total += len(b.Items)
		if b.SrcPE != 2 {
			t.Errorf("batch SrcPE = %d, want 2", b.SrcPE)
		}
	}
	if total != 3 {
		t.Errorf("manual flush carried %d items, want 3", total)
	}
	if m.PendingInSet(2) != 0 {
		t.Error("items remain after manual flush")
	}
	if got := m.FlushSet(2); len(got) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestSharedSetVisibleAcrossProcessPEs(t *testing.T) {
	// Under PP, PEs 0,1,2 share process 0's set: PE 1's insert is
	// flushable by PE 2.
	m, err := New[item](topo2x2x3(), PP, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(1, 11, item{})
	if m.PendingInSet(2) != 1 {
		t.Fatalf("PE 2 sees %d pending, want 1 (shared set)", m.PendingInSet(2))
	}
	batches := m.FlushSet(2)
	if len(batches) != 1 || len(batches[0].Items) != 1 {
		t.Fatal("PE 2 could not flush PE 1's item")
	}
}

func TestWorkerSetsAreIndependent(t *testing.T) {
	m, err := New[item](topo2x2x3(), WW, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(1, 11, item{})
	if m.PendingInSet(2) != 0 {
		t.Error("worker-owned sets should not be shared")
	}
	if m.PendingInSet(1) != 1 {
		t.Error("owner does not see its own item")
	}
}

func TestRoundRobinDeliverySpreadsPEs(t *testing.T) {
	// Process-granularity delivery rotates among the destination process's
	// PEs (stand-in for the comm thread demux).
	m, err := New[item](topo2x2x3(), WP, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		b := m.Insert(0, 6, item{})
		if b == nil {
			t.Fatal("capacity-1 insert must flush")
		}
		if p := topo2x2x3().ProcessOf(b.DestPE); p != 2 {
			t.Fatalf("delivered to process %d, want 2", p)
		}
		seen[b.DestPE] = true
	}
	if len(seen) != 3 {
		t.Errorf("round robin used %d PEs, want 3", len(seen))
	}
}

func TestStatsAccounting(t *testing.T) {
	m, err := New[item](topo2x2x3(), WP, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(0, 6, item{})
	m.Insert(0, 6, item{}) // auto flush (2 items)
	m.Insert(0, 9, item{})
	m.FlushSet(0) // manual flush (1 item)
	s := m.Stats()
	if s.Inserts != 3 {
		t.Errorf("Inserts = %d", s.Inserts)
	}
	if s.AutoFlushes != 1 {
		t.Errorf("AutoFlushes = %d", s.AutoFlushes)
	}
	if s.ManualFlushes != 1 {
		t.Errorf("ManualFlushes = %d", s.ManualFlushes)
	}
	if s.Batches != 2 || s.Items != 3 {
		t.Errorf("Batches = %d, Items = %d", s.Batches, s.Items)
	}
}

func TestConcurrentInsertsSharedSet(t *testing.T) {
	// PP mode: all 3 PEs of process 0 hammer the shared set concurrently;
	// every item must come out exactly once. (The paper notes shared
	// buffers require atomic operations; here a mutex guards the set.)
	m, err := New[item](topo2x2x3(), PP, 64)
	if err != nil {
		t.Fatal(err)
	}
	const perPE = 5000
	var mu sync.Mutex
	got := 0
	var wg sync.WaitGroup
	for pe := 0; pe < 3; pe++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perPE; i++ {
				if b := m.Insert(src, (i*7)%12, item{val: i}); b != nil {
					mu.Lock()
					got += len(b.Items)
					mu.Unlock()
				}
			}
		}(pe)
	}
	wg.Wait()
	for _, b := range m.FlushSet(0) {
		got += len(b.Items)
	}
	if got != 3*perPE {
		t.Errorf("items out = %d, want %d", got, 3*perPE)
	}
}

// Property: across any insert sequence, (items in batches) + (pending)
// equals inserts, for every mode.
func TestQuickConservation(t *testing.T) {
	topo := topo2x2x3()
	f := func(seedOps []uint16, modeRaw, capRaw uint8) bool {
		mode := Mode(modeRaw % 4)
		capacity := int(capRaw%16) + 1
		m, err := New[int](topo, mode, capacity)
		if err != nil {
			return false
		}
		out := 0
		for i, op := range seedOps {
			src := int(op) % 12
			dst := int(op>>4) % 12
			if b := m.Insert(src, dst, i); b != nil {
				out += len(b.Items)
			}
		}
		pending := 0
		for set := 0; set < 12; set++ {
			for _, b := range m.FlushSet(set) {
				out += len(b.Items)
			}
			pending += m.PendingInSet(set)
		}
		return out == len(seedOps) && pending == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertWP(b *testing.B) {
	m, _ := New[item](netsim.PaperNode(2), WP, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(i%96, (i*31)%96, item{val: i})
	}
}

func BenchmarkInsertPPShared(b *testing.B) {
	m, _ := New[item](netsim.PaperNode(2), PP, 1024)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Insert(i%96, (i*31)%96, item{val: i})
			i++
		}
	})
}

func TestReleaseRecyclesBatchBuffers(t *testing.T) {
	m, err := New[int](netsim.SingleNode(4), WP, 8)
	if err != nil {
		t.Fatal(err)
	}
	fill := func() []int {
		var items []int
		for i := 0; i < 8; i++ {
			b := m.Insert(0, 1, i)
			if i < 7 && b != nil {
				t.Fatalf("batch cut early at insert %d", i)
			}
			if i == 7 {
				if b == nil {
					t.Fatal("no batch at capacity")
				}
				items = b.Items
			}
		}
		return items
	}
	first := fill()
	if len(first) != 8 {
		t.Fatalf("batch len = %d, want 8", len(first))
	}
	m.Release(first)
	second := fill()
	// Identity reuse is an implementation detail, not a guarantee — but
	// contents must be correct either way, and a recycled buffer must
	// start empty (no stale items leaking through).
	for i, v := range second {
		if v != i {
			t.Fatalf("second batch[%d] = %d, want %d (stale pooled data?)", i, v, i)
		}
	}
}

func TestReleaseIgnoresUndersizedSlices(t *testing.T) {
	m, err := New[int](netsim.SingleNode(4), WP, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A demux-forward group is smaller than the batch capacity; Release
	// must not poison the pool with it.
	m.Release(make([]int, 0, 3))
	m.ReleaseTo(0, make([]int, 0, 5))
	if buf := m.pool.Get(0); cap(buf) != 8 {
		t.Fatalf("pool issued buffer cap=%d, want exactly 8 (undersized slice pooled?)", cap(buf))
	}
}

// TestBorrowReleaseLedger pins that Borrow participates in the pool
// ledger like a regular buffer: every borrow matched by a release keeps
// PoolGets == PoolPuts, the quiescence invariant.
func TestBorrowReleaseLedger(t *testing.T) {
	m, err := New[int](netsim.SingleNode(4), WP, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		buf := m.Borrow(1)
		if len(buf) != 0 || cap(buf) != 8 {
			t.Fatalf("Borrow: len=%d cap=%d, want 0/8", len(buf), cap(buf))
		}
		buf = append(buf, i)
		if i%2 == 0 {
			m.ReleaseTo(2, buf)
		} else {
			m.Release(buf)
		}
	}
	st := m.Stats()
	if st.PoolGets != st.PoolPuts || st.PoolGets != 10 {
		t.Errorf("ledger gets=%d puts=%d, want 10=10", st.PoolGets, st.PoolPuts)
	}
}

// TestReleaseToSteadyStateZeroAlloc is the allocation-ceiling regression
// for the receiver-side release path: the old sync.Pool implementation
// allocated a *[]T box on every Release; the arena path must not.
func TestReleaseToSteadyStateZeroAlloc(t *testing.T) {
	m, err := New[int](netsim.SingleNode(2), WW, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := m.Borrow(0)
	m.ReleaseTo(0, buf)
	avg := testing.AllocsPerRun(1000, func() {
		b := m.Borrow(0)
		m.ReleaseTo(0, b)
	})
	if avg > 0 {
		t.Errorf("Borrow+ReleaseTo allocates %.2f objects per cycle, want 0", avg)
	}
}
