package partition

import (
	"testing"
	"testing/quick"

	"acic/internal/gen"
	"acic/internal/graph"
)

func TestOneDCoversAllVertices(t *testing.T) {
	for _, c := range []struct{ n, pes int }{
		{100, 4}, {100, 7}, {5, 8}, {0, 3}, {1, 1}, {1000, 48},
	} {
		p := NewOneD(c.n, c.pes)
		total := 0
		for pe := 0; pe < c.pes; pe++ {
			lo, hi := p.Range(pe)
			total += int(hi - lo)
		}
		if total != c.n {
			t.Errorf("n=%d pes=%d: ranges cover %d vertices", c.n, c.pes, total)
		}
	}
}

func TestOneDOwnerMatchesRange(t *testing.T) {
	for _, c := range []struct{ n, pes int }{
		{100, 4}, {103, 7}, {5, 8}, {48, 48}, {1000, 13},
	} {
		p := NewOneD(c.n, c.pes)
		for v := int32(0); int(v) < c.n; v++ {
			pe := p.Owner(v)
			lo, hi := p.Range(pe)
			if v < lo || v >= hi {
				t.Fatalf("n=%d pes=%d: Owner(%d)=%d but range [%d,%d)", c.n, c.pes, v, pe, lo, hi)
			}
		}
	}
}

func TestOneDBalance(t *testing.T) {
	p := NewOneD(103, 7)
	// Sizes may differ by at most one.
	min, max := 1<<30, 0
	for pe := 0; pe < 7; pe++ {
		s := p.Size(pe)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("block sizes spread %d..%d", min, max)
	}
}

func TestOneDLocalIndex(t *testing.T) {
	p := NewOneD(10, 3) // blocks: [0,4) [4,7) [7,10)
	if p.LocalIndex(0) != 0 || p.LocalIndex(3) != 3 {
		t.Error("block 0 local index wrong")
	}
	if p.LocalIndex(4) != 0 || p.LocalIndex(6) != 2 {
		t.Error("block 1 local index wrong")
	}
	if p.LocalIndex(9) != 2 {
		t.Error("block 2 local index wrong")
	}
}

func TestOneDPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOneD(10, 0) },
		func() { NewOneD(-1, 2) },
		func() { NewOneD(10, 2).Owner(10) },
		func() { NewOneD(10, 2).Owner(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestOneDEdgeImbalance(t *testing.T) {
	// Star graph: all edges on PE owning vertex 0 → imbalance = numPEs.
	g := gen.Star(100)
	p := NewOneD(100, 4)
	if imb := p.EdgeImbalance(g); imb != 4 {
		t.Errorf("star imbalance = %v, want 4", imb)
	}
	empty := graph.MustBuild(10, nil)
	if imb := p2(10, 2).EdgeImbalance(empty); imb != 1 {
		t.Errorf("empty-graph imbalance = %v, want 1", imb)
	}
}

func p2(n, pes int) *OneD { return NewOneD(n, pes) }

func TestEdgeBalancedCoversAllVertices(t *testing.T) {
	g := gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 1})
	p := NewEdgeBalancedOneD(g, 7)
	total := 0
	for pe := 0; pe < 7; pe++ {
		lo, hi := p.Range(pe)
		total += int(hi - lo)
		for v := lo; v < hi; v++ {
			if p.Owner(v) != pe {
				t.Fatalf("Owner(%d) = %d, want %d", v, p.Owner(v), pe)
			}
		}
	}
	if total != g.NumVertices() {
		t.Fatalf("ranges cover %d of %d vertices", total, g.NumVertices())
	}
}

func TestEdgeBalancedBeatsVertexBalancedOnRMAT(t *testing.T) {
	g := gen.RMAT(12, 8, gen.DefaultRMAT(), gen.Config{Seed: 2})
	vertexBal := NewOneD(g.NumVertices(), 16).EdgeImbalance(g)
	edgeBal := NewEdgeBalancedOneD(g, 16).EdgeImbalance(g)
	if edgeBal >= vertexBal {
		t.Errorf("edge-balanced imbalance %.2f not below vertex-balanced %.2f", edgeBal, vertexBal)
	}
	// A single hub vertex bounds achievable balance, but RMAT at this
	// scale should get close to even.
	if edgeBal > 2.0 {
		t.Errorf("edge-balanced imbalance %.2f unexpectedly high", edgeBal)
	}
}

func TestEdgeBalancedFallbacks(t *testing.T) {
	empty := graph.MustBuild(10, nil)
	p := NewEdgeBalancedOneD(empty, 4)
	// Edgeless graphs fall back to vertex balance.
	total := 0
	for pe := 0; pe < 4; pe++ {
		total += p.Size(pe)
	}
	if total != 10 {
		t.Errorf("edgeless fallback covers %d vertices", total)
	}
	// Star: all edges at vertex 0; first block absorbs them.
	star := gen.Star(100)
	ps := NewEdgeBalancedOneD(star, 4)
	if ps.Owner(0) != 0 {
		t.Error("hub vertex not on PE 0")
	}
	for v := int32(0); v < 100; v++ {
		o := ps.Owner(v)
		if o < 0 || o >= 4 {
			t.Fatalf("Owner(%d) = %d", v, o)
		}
	}
}

func TestEdgeBalancedPanicsOnBadPEs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEdgeBalancedOneD(gen.Path(5), 0)
}

func TestTwoDEdgeOwnership(t *testing.T) {
	p := NewTwoD(100, 2, 3)
	if p.NumPEs() != 6 {
		t.Fatalf("NumPEs = %d", p.NumPEs())
	}
	r, c := p.Grid()
	if r != 2 || c != 3 {
		t.Fatalf("Grid = (%d,%d)", r, c)
	}
	// Vertex 0 is in row 0, col 0; vertex 99 in row 1, col 2.
	if got := p.OwnerOfEdge(0, 99); got != p.PEAt(0, 2) {
		t.Errorf("OwnerOfEdge(0,99) = %d, want %d", got, p.PEAt(0, 2))
	}
	if got := p.OwnerOfEdge(99, 0); got != p.PEAt(1, 0) {
		t.Errorf("OwnerOfEdge(99,0) = %d, want %d", got, p.PEAt(1, 0))
	}
}

func TestTwoDRowColConsistent(t *testing.T) {
	p := NewTwoD(97, 3, 4)
	for v := int32(0); v < 97; v++ {
		r, c := p.VertexRow(v), p.VertexCol(v)
		if r < 0 || r >= 3 || c < 0 || c >= 4 {
			t.Fatalf("vertex %d mapped to (%d,%d)", v, r, c)
		}
	}
}

func TestTwoDEdgeCountsSum(t *testing.T) {
	g := gen.Uniform(256, 2048, gen.Config{Seed: 3})
	p := NewTwoD(256, 4, 4)
	counts := p.EdgeCounts(g)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != g.NumEdges() {
		t.Errorf("edge counts sum %d != %d", sum, g.NumEdges())
	}
}

func TestTwoDBeatsOneDOnRMATImbalance(t *testing.T) {
	// The motivation for the RIKEN baseline's 2-D layout (§IV-F, §V): on a
	// power-law graph, 16 PEs arranged 4×4 spread hub edges across a row,
	// while 1-D concentrates each hub's whole edge list on one PE.
	g := gen.RMAT(12, 8, gen.DefaultRMAT(), gen.Config{Seed: 5})
	one := NewOneD(g.NumVertices(), 16).EdgeImbalance(g)
	two := NewTwoD(g.NumVertices(), 4, 4).EdgeImbalance(g)
	if two >= one {
		t.Errorf("2-D imbalance %.2f not better than 1-D %.2f on RMAT", two, one)
	}
}

func TestTwoDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTwoD with zero rows did not panic")
		}
	}()
	NewTwoD(10, 0, 2)
}

func TestOneAndHalfDClasses(t *testing.T) {
	g := gen.RMAT(10, 16, gen.DefaultRMAT(), gen.Config{Seed: 7})
	p := NewOneAndHalfD(g, 8, 0.01, 0.10)
	e, h, l := p.ClassCounts()
	n := g.NumVertices()
	if e == 0 {
		t.Error("no extreme vertices classed")
	}
	if e+h+l != n {
		t.Errorf("class counts %d+%d+%d != %d", e, h, l, n)
	}
	if l < n/2 {
		t.Errorf("low-degree class too small: %d of %d", l, n)
	}
	// Extreme vertices must have degree >= every high vertex's... at least
	// check extreme degrees exceed the low-class median degree.
	stats := g.OutDegreeStats()
	for v := 0; v < n; v++ {
		if p.Class(int32(v)) == ClassExtreme && g.OutDegree(v) < stats.P50 {
			t.Errorf("extreme vertex %d has sub-median degree %d", v, g.OutDegree(v))
		}
	}
}

func TestOneAndHalfDOwnerInRange(t *testing.T) {
	g := gen.RMAT(9, 8, gen.DefaultRMAT(), gen.Config{Seed: 8})
	p := NewOneAndHalfD(g, 6, 0.02, 0.2)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		o := p.Owner(v)
		if o < 0 || o >= 6 {
			t.Fatalf("Owner(%d) = %d out of range", v, o)
		}
	}
	if p.NumPEs() != 6 {
		t.Fatalf("NumPEs = %d", p.NumPEs())
	}
}

func TestOneAndHalfDLowKeepsLocality(t *testing.T) {
	g := gen.Path(100) // uniform degree 1: everything classes low
	p := NewOneAndHalfD(g, 4, 0.0, 0.0)
	oneD := NewOneD(100, 4)
	for v := int32(0); v < 100; v++ {
		if p.Class(v) != ClassLow {
			t.Fatalf("vertex %d not low-degree", v)
		}
		if p.Owner(v) != oneD.Owner(v) {
			t.Fatalf("low vertex %d moved off its 1-D block", v)
		}
	}
}

func TestOneAndHalfDEmptyGraph(t *testing.T) {
	g := graph.MustBuild(0, nil)
	p := NewOneAndHalfD(g, 4, 0.1, 0.1)
	if e, h, l := p.ClassCounts(); e+h+l != 0 {
		t.Error("empty graph produced classes")
	}
}

// Property: every vertex is owned by exactly the PE whose range contains it,
// for arbitrary (n, pes).
func TestQuickOneDOwnerTotal(t *testing.T) {
	f := func(nRaw uint16, pesRaw uint8) bool {
		n := int(nRaw % 2000)
		pes := int(pesRaw%63) + 1
		p := NewOneD(n, pes)
		for v := 0; v < n; v++ {
			pe := p.Owner(int32(v))
			lo, hi := p.Range(pe)
			if int32(v) < lo || int32(v) >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
