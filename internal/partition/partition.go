// Package partition maps vertices to processing elements.
//
// ACIC uses a one-dimensional partitioning: each PE owns a contiguous block
// of vertices and the out-edges of those vertices, and exactly one copy of
// each vertex object exists (§II-A). The RIKEN Δ-stepping comparator uses a
// two-dimensional partitioning of the adjacency matrix (§IV-A), and the
// paper's future-work section discusses the 1.5-D partitioning of Cao et
// al., which classes vertices by degree (§V). All three are implemented
// here so the baselines and the future-work benchmarks share one vocabulary.
package partition

import (
	"fmt"

	"acic/internal/graph"
)

// OneD assigns vertices to numPEs PEs in contiguous blocks of near-equal
// vertex count. This is ACIC's partition and the source of the load
// imbalance the paper discusses on RMAT graphs (§IV-F): blocks equalize
// vertices, not edges.
type OneD struct {
	numVertices int
	numPEs      int
	// starts[p] is the first vertex of PE p; starts[numPEs] = numVertices.
	starts []int32
	// custom marks non-uniform block boundaries (edge-balanced layout);
	// Owner then binary-searches starts instead of using block arithmetic.
	custom bool
}

// NewOneD builds a 1-D block partition of numVertices over numPEs PEs.
// It panics if numPEs <= 0 or numVertices < 0.
func NewOneD(numVertices, numPEs int) *OneD {
	if numPEs <= 0 {
		panic("partition: numPEs must be positive")
	}
	if numVertices < 0 {
		panic("partition: negative numVertices")
	}
	p := &OneD{numVertices: numVertices, numPEs: numPEs, starts: make([]int32, numPEs+1)}
	base := numVertices / numPEs
	extra := numVertices % numPEs
	off := 0
	for i := 0; i < numPEs; i++ {
		p.starts[i] = int32(off)
		off += base
		if i < extra {
			off++
		}
	}
	p.starts[numPEs] = int32(numVertices)
	return p
}

// NumPEs returns the PE count.
func (p *OneD) NumPEs() int { return p.numPEs }

// NumVertices returns the vertex count.
func (p *OneD) NumVertices() int { return p.numVertices }

// NewEdgeBalancedOneD builds a 1-D block partition whose boundaries are
// chosen so each PE owns approximately equal *edge* counts rather than
// equal vertex counts. This is the repository's stand-in for the RIKEN
// code's 2-D partitioning (§IV-A): what matters for the SSSP comparison is
// that hub-heavy blocks do not concentrate relaxation work on one PE, and
// an edge-balanced contiguous layout achieves that while keeping the 1-D
// ownership interface. The substitution is recorded in DESIGN.md.
func NewEdgeBalancedOneD(g *graph.Graph, numPEs int) *OneD {
	if numPEs <= 0 {
		panic("partition: numPEs must be positive")
	}
	n := g.NumVertices()
	p := &OneD{numVertices: n, numPEs: numPEs, starts: make([]int32, numPEs+1), custom: true}
	total := int64(g.NumEdges())
	var cum int64
	pe := 1
	for v := 0; v < n && pe < numPEs; v++ {
		cum += int64(g.OutDegree(v))
		// Close block pe-1 once it holds its proportional share of edges.
		for pe < numPEs && cum >= total*int64(pe)/int64(numPEs) {
			p.starts[pe] = int32(v + 1)
			pe++
		}
	}
	// Any unclosed blocks own empty tail ranges.
	for ; pe < numPEs; pe++ {
		p.starts[pe] = int32(n)
	}
	p.starts[numPEs] = int32(n)
	// Boundaries must be non-decreasing and start at 0 (already true by
	// construction); ensure every vertex is covered even for edgeless
	// graphs, where all interior boundaries collapse to n.
	if n > 0 && total == 0 {
		// Fall back to vertex balance: an edgeless graph has no edge
		// signal to balance on.
		return NewOneD(n, numPEs)
	}
	return p
}

// Owner returns the PE owning vertex v. The block layout allows O(1)
// arithmetic: the first `extra` blocks have base+1 vertices. Edge-balanced
// layouts binary-search the block boundaries instead.
func (p *OneD) Owner(v int32) int {
	if v < 0 || int(v) >= p.numVertices {
		panic(fmt.Sprintf("partition: vertex %d out of range [0,%d)", v, p.numVertices))
	}
	if p.custom {
		// Find the last start <= v.
		lo, hi := 0, p.numPEs-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if p.starts[mid] <= v {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	base := p.numVertices / p.numPEs
	extra := p.numVertices % p.numPEs
	if base == 0 {
		// Fewer vertices than PEs: vertex v lives on PE v.
		return int(v)
	}
	boundary := extra * (base + 1)
	if int(v) < boundary {
		return int(v) / (base + 1)
	}
	return extra + (int(v)-boundary)/base
}

// Range returns the half-open vertex interval [lo, hi) owned by PE pe.
func (p *OneD) Range(pe int) (lo, hi int32) {
	return p.starts[pe], p.starts[pe+1]
}

// LocalIndex converts a global vertex id to its index within the owner's
// block.
func (p *OneD) LocalIndex(v int32) int {
	return int(v - p.starts[p.Owner(v)])
}

// Size returns the number of vertices on PE pe.
func (p *OneD) Size(pe int) int {
	return int(p.starts[pe+1] - p.starts[pe])
}

// GlobalOf inverts LocalIndex for PE pe.
func (p *OneD) GlobalOf(pe, local int) int32 {
	return p.starts[pe] + int32(local)
}

// EdgeImbalance computes max-over-PEs(edges)/mean(edges), the load-imbalance
// figure of merit: 1.0 is perfect, large values explain ACIC's RMAT losses.
func (p *OneD) EdgeImbalance(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 1
	}
	max := 0
	for pe := 0; pe < p.numPEs; pe++ {
		lo, hi := p.Range(pe)
		e := 0
		for v := lo; v < hi; v++ {
			e += g.OutDegree(int(v))
		}
		if e > max {
			max = e
		}
	}
	mean := float64(g.NumEdges()) / float64(p.numPEs)
	return float64(max) / mean
}

// TwoD is a 2-D partition of the adjacency matrix over an R×C grid of PEs:
// PE (r, c) owns edges whose source falls in row-block r and target in
// column-block c. Communication is confined to one row (gather relaxation
// requests) and one column (scatter results), the property the RIKEN code
// exploits (§IV-A, §V).
type TwoD struct {
	numVertices int
	rows, cols  int
	rowPart     *OneD // blocks of sources
	colPart     *OneD // blocks of targets
}

// NewTwoD builds an R×C grid partition. It panics on non-positive grid
// dimensions.
func NewTwoD(numVertices, rows, cols int) *TwoD {
	if rows <= 0 || cols <= 0 {
		panic("partition: grid dimensions must be positive")
	}
	return &TwoD{
		numVertices: numVertices,
		rows:        rows,
		cols:        cols,
		rowPart:     NewOneD(numVertices, rows),
		colPart:     NewOneD(numVertices, cols),
	}
}

// Grid returns the (rows, cols) shape.
func (p *TwoD) Grid() (rows, cols int) { return p.rows, p.cols }

// NumPEs returns rows*cols.
func (p *TwoD) NumPEs() int { return p.rows * p.cols }

// OwnerOfEdge returns the PE owning edge (from → to).
func (p *TwoD) OwnerOfEdge(from, to int32) int {
	r := p.rowPart.Owner(from)
	c := p.colPart.Owner(to)
	return r*p.cols + c
}

// VertexRow returns the grid row responsible for v as an edge source.
func (p *TwoD) VertexRow(v int32) int { return p.rowPart.Owner(v) }

// VertexCol returns the grid column responsible for v as an edge target.
func (p *TwoD) VertexCol(v int32) int { return p.colPart.Owner(v) }

// PEAt returns the linear PE id of grid cell (r, c).
func (p *TwoD) PEAt(r, c int) int { return r*p.cols + c }

// EdgeCounts returns the per-PE edge counts for g, used by the imbalance
// comparison between 1-D and 2-D partitioning.
func (p *TwoD) EdgeCounts(g *graph.Graph) []int {
	counts := make([]int, p.NumPEs())
	g.EachEdge(func(from, to int32, _ float64) {
		counts[p.OwnerOfEdge(from, to)]++
	})
	return counts
}

// EdgeImbalance is max/mean over the per-PE edge counts.
func (p *TwoD) EdgeImbalance(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 1
	}
	counts := p.EdgeCounts(g)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(g.NumEdges()) / float64(p.NumPEs())
	return float64(max) / mean
}

// DegreeClass labels a vertex for the 1.5-D partition of Cao et al. (§V).
type DegreeClass uint8

// Degree classes, ordered by decreasing degree.
const (
	ClassExtreme DegreeClass = iota // extremely high-degree
	ClassHigh                       // high-degree
	ClassLow                        // low-degree
)

// OneAndHalfD implements the degree-classed 1.5-D partitioning sketched in
// the future-work section: vertices are classed as extremely-high-degree
// (top extremeFrac), high-degree (next highFrac) or low-degree, and the six
// class-pair subgraphs get distinct placement policies. Here we model the
// placement consequence that matters for SSSP: extreme vertices are
// replicated in spirit by being hashed over all PEs edge-wise, high ones
// are hashed by source, and low ones keep 1-D block locality.
type OneAndHalfD struct {
	oneD    *OneD
	classes []DegreeClass
}

// NewOneAndHalfD classes vertices of g by out-degree thresholds: the
// extremeFrac highest-degree vertices are ClassExtreme, the next highFrac
// are ClassHigh, the rest ClassLow.
func NewOneAndHalfD(g *graph.Graph, numPEs int, extremeFrac, highFrac float64) *OneAndHalfD {
	n := g.NumVertices()
	p := &OneAndHalfD{oneD: NewOneD(n, numPEs), classes: make([]DegreeClass, n)}
	if n == 0 {
		return p
	}
	// Rank vertices by degree via counting over the degree histogram to
	// avoid a full sort for large graphs.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		hist[g.OutDegree(v)]++
	}
	extremeCount := int(extremeFrac * float64(n))
	highCount := int(highFrac * float64(n))
	// Find degree cutoffs from the top of the histogram.
	extremeCut, highCut := maxDeg+1, maxDeg+1
	cum := 0
	for d := maxDeg; d >= 0; d-- {
		cum += hist[d]
		if extremeCut > maxDeg && cum >= extremeCount && extremeCount > 0 {
			extremeCut = d
		}
		if highCut > maxDeg && cum >= extremeCount+highCount && highCount > 0 {
			highCut = d
			break
		}
	}
	for v := 0; v < n; v++ {
		d := g.OutDegree(v)
		switch {
		case extremeCount > 0 && d >= extremeCut:
			p.classes[v] = ClassExtreme
		case highCount > 0 && d >= highCut:
			p.classes[v] = ClassHigh
		default:
			p.classes[v] = ClassLow
		}
	}
	return p
}

// Class returns the degree class of v.
func (p *OneAndHalfD) Class(v int32) DegreeClass { return p.classes[v] }

// Owner places v's vertex object. Low-degree vertices keep 1-D locality;
// high and extreme vertices are spread by a multiplicative hash so no PE
// concentrates hubs.
func (p *OneAndHalfD) Owner(v int32) int {
	switch p.classes[v] {
	case ClassLow:
		return p.oneD.Owner(v)
	default:
		h := uint64(v) * 0x9e3779b97f4a7c15
		return int(h % uint64(p.oneD.NumPEs()))
	}
}

// NumPEs returns the PE count.
func (p *OneAndHalfD) NumPEs() int { return p.oneD.NumPEs() }

// ClassCounts returns how many vertices fall in each class, for tests and
// reporting.
func (p *OneAndHalfD) ClassCounts() (extreme, high, low int) {
	for _, c := range p.classes {
		switch c {
		case ClassExtreme:
			extreme++
		case ClassHigh:
			high++
		default:
			low++
		}
	}
	return
}
