package partition

import (
	"testing"
	"testing/quick"

	"acic/internal/gen"
)

func TestChunkedOwnerRoundRobin(t *testing.T) {
	// 100 vertices, 4 PEs, 5 chunks/PE → 20 chunks of 5.
	p := NewChunked(100, 4, 5)
	if p.ChunkSize() != 5 {
		t.Fatalf("ChunkSize = %d, want 5", p.ChunkSize())
	}
	if p.Owner(0) != 0 || p.Owner(4) != 0 {
		t.Error("first chunk should be PE 0")
	}
	if p.Owner(5) != 1 || p.Owner(19) != 3 {
		t.Error("round robin assignment wrong")
	}
	if p.Owner(20) != 0 {
		t.Error("fifth chunk should wrap to PE 0")
	}
}

func TestChunkedSizeSumsToVertices(t *testing.T) {
	for _, c := range []struct{ n, pes, cpp int }{
		{100, 4, 5}, {103, 7, 3}, {5, 8, 2}, {1, 1, 1}, {64, 3, 4},
	} {
		p := NewChunked(c.n, c.pes, c.cpp)
		total := 0
		for pe := 0; pe < c.pes; pe++ {
			total += p.Size(pe)
		}
		if total != c.n {
			t.Errorf("n=%d pes=%d cpp=%d: sizes sum to %d", c.n, c.pes, c.cpp, total)
		}
	}
}

func TestChunkedLocalGlobalRoundTrip(t *testing.T) {
	for _, c := range []struct{ n, pes, cpp int }{
		{100, 4, 5}, {103, 7, 3}, {17, 4, 2}, {64, 3, 4},
	} {
		p := NewChunked(c.n, c.pes, c.cpp)
		for v := int32(0); int(v) < c.n; v++ {
			pe := p.Owner(v)
			local := p.LocalIndex(v)
			if local < 0 || local >= p.Size(pe) {
				t.Fatalf("n=%d pes=%d cpp=%d: LocalIndex(%d)=%d outside store size %d",
					c.n, c.pes, c.cpp, v, local, p.Size(pe))
			}
			if back := p.GlobalOf(pe, local); back != v {
				t.Fatalf("GlobalOf(%d,%d) = %d, want %d", pe, local, back, v)
			}
		}
	}
}

func TestChunkedReducesHubImbalance(t *testing.T) {
	// The point of §V over-decomposition: on RMAT, chunked round-robin
	// spreads hub neighborhoods better than plain blocks.
	g := gen.RMAT(12, 8, gen.DefaultRMAT(), gen.Config{Seed: 3})
	pes := 16
	block := NewOneD(g.NumVertices(), pes)
	chunked := NewChunked(g.NumVertices(), pes, 16)
	edgesPer := func(owner func(int32) int) float64 {
		counts := make([]int, pes)
		for v := 0; v < g.NumVertices(); v++ {
			counts[owner(int32(v))] += g.OutDegree(v)
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) * float64(pes) / float64(g.NumEdges())
	}
	bi := edgesPer(block.Owner)
	ci := edgesPer(chunked.Owner)
	if ci >= bi {
		t.Errorf("chunked imbalance %.2f not below block %.2f", ci, bi)
	}
}

func TestChunkedPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewChunked(10, 0, 1) },
		func() { NewChunked(10, 2, 0) },
		func() { NewChunked(-1, 2, 1) },
		func() { NewChunked(10, 2, 2).Owner(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Owner, LocalIndex and GlobalOf are mutually consistent for
// arbitrary shapes.
func TestQuickChunkedConsistent(t *testing.T) {
	f := func(nRaw uint16, pesRaw, cppRaw uint8) bool {
		n := int(nRaw % 3000)
		pes := int(pesRaw%15) + 1
		cpp := int(cppRaw%8) + 1
		p := NewChunked(n, pes, cpp)
		total := 0
		for pe := 0; pe < pes; pe++ {
			total += p.Size(pe)
		}
		if total != n {
			return false
		}
		for v := 0; v < n; v++ {
			pe := p.Owner(int32(v))
			if p.GlobalOf(pe, p.LocalIndex(int32(v))) != int32(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
