package partition

import "fmt"

// Chunked implements the over-decomposition idea of the paper's
// future-work section (§V): the graph is divided into many more contiguous
// chunks than there are PEs, and chunks are dealt round-robin. A scale-free
// hub's neighborhood then spreads across PEs at chunk granularity instead
// of concentrating on whichever PE drew the hub's block, attacking the 1-D
// load imbalance without abandoning contiguous storage within a chunk.
// (The paper additionally proposes migrating chunks at runtime; this static
// round-robin assignment is the non-migratory first step and is what the
// over-decomposition ablation benchmark measures.)
type Chunked struct {
	numVertices int
	numPEs      int
	chunkSize   int32
	numChunks   int
}

// NewChunked builds an over-decomposed partition with chunksPerPE chunks
// per PE (approximately; the final chunk may be short). chunksPerPE = 1
// degenerates to a block-cyclic layout with PE-count chunks.
func NewChunked(numVertices, numPEs, chunksPerPE int) *Chunked {
	if numPEs <= 0 {
		panic("partition: numPEs must be positive")
	}
	if chunksPerPE <= 0 {
		panic("partition: chunksPerPE must be positive")
	}
	if numVertices < 0 {
		panic("partition: negative numVertices")
	}
	totalChunks := numPEs * chunksPerPE
	chunkSize := (numVertices + totalChunks - 1) / totalChunks
	if chunkSize < 1 {
		chunkSize = 1
	}
	numChunks := 0
	if numVertices > 0 {
		numChunks = (numVertices + chunkSize - 1) / chunkSize
	}
	return &Chunked{
		numVertices: numVertices,
		numPEs:      numPEs,
		chunkSize:   int32(chunkSize),
		numChunks:   numChunks,
	}
}

// NumPEs returns the PE count.
func (p *Chunked) NumPEs() int { return p.numPEs }

// NumVertices returns the vertex count.
func (p *Chunked) NumVertices() int { return p.numVertices }

// ChunkSize returns the vertices per chunk (last chunk may be shorter).
func (p *Chunked) ChunkSize() int { return int(p.chunkSize) }

// Owner returns the PE owning vertex v: chunks are dealt round-robin.
func (p *Chunked) Owner(v int32) int {
	if v < 0 || int(v) >= p.numVertices {
		panic(fmt.Sprintf("partition: vertex %d out of range [0,%d)", v, p.numVertices))
	}
	return int(v/p.chunkSize) % p.numPEs
}

// Size returns the number of vertices stored on PE pe.
func (p *Chunked) Size(pe int) int {
	n := 0
	for chunk := pe; chunk < p.numChunks; chunk += p.numPEs {
		lo := int(chunk) * int(p.chunkSize)
		hi := lo + int(p.chunkSize)
		if hi > p.numVertices {
			hi = p.numVertices
		}
		n += hi - lo
	}
	return n
}

// LocalIndex maps a global vertex id to its index in the owner's local
// store: the owner's chunks are concatenated in ascending chunk order.
func (p *Chunked) LocalIndex(v int32) int {
	chunk := v / p.chunkSize
	localChunk := int(chunk) / p.numPEs
	return localChunk*int(p.chunkSize) + int(v%p.chunkSize)
}

// GlobalOf inverts LocalIndex for PE pe.
func (p *Chunked) GlobalOf(pe, local int) int32 {
	localChunk := local / int(p.chunkSize)
	chunk := localChunk*p.numPEs + pe
	return int32(chunk)*p.chunkSize + int32(local%int(p.chunkSize))
}
