package stress

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"acic/internal/cc"
	"acic/internal/core"
	"acic/internal/delta2d"
	"acic/internal/deltastep"
	"acic/internal/distctrl"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/kla"
	"acic/internal/metrics"
	"acic/internal/netsim"
	"acic/internal/relnet"
	"acic/internal/runtime"
	"acic/internal/seq"
	"acic/internal/trace"
	"acic/internal/tram"
	"acic/internal/xrand"
)

// Options configure one harness invocation. The zero value is not useful;
// cmd/acic-stress fills it from flags.
type Options struct {
	// Seed determines the entire matrix: graph structure, sources, jitter
	// streams. The same (Seed, Rounds, Profiles, Short) enumeration always
	// produces the same runs.
	Seed uint64
	// Rounds is the number of full passes over the algorithm × topology ×
	// graph × profile matrix; each pass draws fresh per-run seeds.
	Rounds int
	// Profiles restricts the jitter profiles; nil means Profiles().
	Profiles []Profile
	// Faults restricts the fabric fault profiles exercised by the
	// acic-with-reliability sub-matrix; nil means Faults(). The literal
	// element FaultNone disables that sub-matrix entirely.
	Faults []Fault
	// Churn selects the dynamic-graph churn sub-matrix: ChurnOn (the
	// default, also selected by the zero value) includes it alongside the
	// classic matrix, ChurnOff drops it, ChurnOnly runs nothing else — the
	// CI churn smoke stage.
	Churn ChurnMode
	// Short shrinks the matrix and the graphs for a CI-speed smoke pass.
	Short bool
	// Only, when non-nil, replays exactly one run index from the
	// enumeration — the counterexample-replay workflow. (A pointer so the
	// zero Options value means "all runs", while run index 0 stays
	// addressable.)
	Only *int
	// Timeout bounds one run's wall time; a run that exceeds it is
	// reported as a hang (the loud failure mode message loss produces).
	// Zero means 60s.
	Timeout time.Duration
	// Log receives one line per run when Verbose, and failure detail
	// always; nil means discard.
	Log     io.Writer
	Verbose bool
	// ArtifactDir, when non-empty, makes the harness replay every failing
	// acic run once with the full observability stack attached and write
	// the three artifacts — trace-chrome.json, metrics.json, audit.jsonl —
	// under ArtifactDir/run-<index>/ for offline diagnosis. The other
	// drivers carry no introspection hooks, so only acic failures dump.
	ArtifactDir string
}

// Spec identifies one run of the matrix. Seed alone fully determines the
// run's graph, source, and jitter stream.
type Spec struct {
	Index   int
	Algo    string
	Graph   string
	Topo    string
	Profile Profile
	// Fault is the fabric fault profile; FaultNone for the classic matrix.
	// Fault runs execute acic with the relnet reliability layer enabled.
	Fault Fault
	// Fabric selects the transport: "" is the simulated in-process fabric
	// (netsim), "tcp" is real loopback sockets (sockfab). The TCP sub-matrix
	// enumerates each of its spec shapes under both values, pinning that the
	// algorithm is fabric-agnostic.
	Fabric string
	Seed   uint64
}

func (s Spec) String() string {
	out := fmt.Sprintf("run=%d algo=%s graph=%s topo=%s profile=%s",
		s.Index, s.Algo, s.Graph, s.Topo, s.Profile)
	if s.faulted() {
		out += fmt.Sprintf(" fault=%s", s.Fault)
	}
	if s.Fabric != "" {
		out += fmt.Sprintf(" fabric=%s", s.Fabric)
	}
	return out + fmt.Sprintf(" seed=%#x", s.Seed)
}

// Failure is one run that violated the oracle or a conservation invariant.
type Failure struct {
	Spec Spec
	Err  error
}

// Report summarizes a harness invocation.
type Report struct {
	Total    int
	Failures []Failure
}

// Algorithms lists the six drivers the matrix exercises, plus the raw
// fabric hammer that stresses the delay-queue layer beneath them. The
// churn workload (churn.go) rides the same enumeration under algo "churn".
func Algorithms() []string {
	return []string{"fabric", "acic", "deltastep", "delta2d", "distctrl", "kla", "cc"}
}

// ChurnMode selects how the churn sub-matrix participates in a run.
type ChurnMode string

const (
	ChurnOn   ChurnMode = "on"
	ChurnOff  ChurnMode = "off"
	ChurnOnly ChurnMode = "only"
)

// ParseChurn maps a flag value to a ChurnMode; "" means ChurnOn.
func ParseChurn(s string) (ChurnMode, error) {
	switch ChurnMode(s) {
	case "", ChurnOn:
		return ChurnOn, nil
	case ChurnOff, ChurnOnly:
		return ChurnMode(s), nil
	}
	return "", fmt.Errorf("stress: unknown churn mode %q (want on, off, or only)", s)
}

func topoByName(name string) netsim.Topology {
	switch name {
	case "single4":
		return netsim.SingleNode(4)
	case "single8":
		return netsim.SingleNode(8)
	case "paper1":
		return netsim.PaperNode(1)
	case "multi4":
		// Four processes of two PEs each — the multi-process shape the TCP
		// sub-matrix drives over real loopback sockets.
		return netsim.Topology{Nodes: 1, ProcsPerNode: 4, PEsPerProc: 2}
	}
	panic(fmt.Sprintf("stress: unknown topology %q", name))
}

// enumerate builds the deterministic run list for opts. Per-run seeds are
// derived from (master seed, index) so the list can be reconstructed — and
// any single run replayed — from the flags alone.
func enumerate(opts Options) []Spec {
	topos := []string{"single4", "single8", "paper1"}
	graphs := []string{"uniform", "erdos", "rmat", "grid", "star", "cycle"}
	if opts.Short {
		topos = []string{"single4"}
		graphs = []string{"uniform", "star"}
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		profiles = Profiles()
	}
	faults := opts.Faults
	if len(faults) == 0 {
		faults = Faults()
	}
	faultTopos := []string{"single4", "paper1"}
	faultGraphs := []string{"uniform", "rmat"}
	faultProfiles := []Profile{ProfileNone, ProfileUniform}
	if opts.Short {
		faultTopos = []string{"single4"}
		faultGraphs = []string{"uniform"}
		faultProfiles = []Profile{ProfileNone}
	}
	churnGraphs := []string{"uniform", "rmat", "grid"}
	if opts.Short {
		churnGraphs = []string{"uniform"}
	}
	churn := opts.Churn
	if churn == "" {
		churn = ChurnOn
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	tcpTopos := []string{"single4", "multi4"}
	tcpGraphs := []string{"uniform", "rmat"}
	if opts.Short {
		tcpTopos = []string{"multi4"}
		tcpGraphs = []string{"uniform"}
	}
	var specs []Spec
	add := func(algo, graphName, topoName string, p Profile, f Fault, fabric string) {
		idx := len(specs)
		seed := xrand.NewSplitMix64(opts.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15).Next()
		specs = append(specs, Spec{Index: idx, Algo: algo, Graph: graphName, Topo: topoName, Profile: p, Fault: f, Fabric: fabric, Seed: seed})
	}
	for r := 0; r < rounds; r++ {
		if churn != ChurnOnly {
			for _, p := range profiles {
				// The fabric hammer runs once per profile per round, plus the
				// tightest-timing zero-latency case.
				add("fabric", "-", "paper1", p, FaultNone, "")
			}
			add("fabric", "-", "paper1", ProfileNone, FaultNone, "")
			for _, algo := range Algorithms()[1:] {
				for _, topoName := range topos {
					for _, graphName := range graphs {
						for _, p := range profiles {
							add(algo, graphName, topoName, p, FaultNone, "")
						}
					}
				}
			}
			// The TCP sub-matrix: acic over real loopback sockets (sockfab),
			// each shape enumerated back to back with the identical spec on
			// the simulated fabric. Real sockets own their timing, so jitter
			// profiles and fault plans do not apply; both members of a pair
			// run ProfileNone/FaultNone and differ only in Fabric.
			for _, topoName := range tcpTopos {
				for _, graphName := range tcpGraphs {
					add("acic", graphName, topoName, ProfileNone, FaultNone, "")
					add("acic", graphName, topoName, ProfileNone, FaultNone, "tcp")
				}
			}
			// The lossy-fabric sub-matrix: acic over an actively hostile fabric
			// (drop/dup/reorder filters) with the relnet reliability layer
			// healing it. Same oracle, same conservation audit — now over the
			// extended ledger identity with retransmit and dedup columns.
			for _, f := range faults {
				if f == FaultNone {
					continue
				}
				for _, topoName := range faultTopos {
					for _, graphName := range faultGraphs {
						for _, p := range faultProfiles {
							add("acic", graphName, topoName, p, f, "")
						}
					}
				}
			}
		}
		// The churn sub-matrix: mutation streams over dynamic graphs,
		// oracle-validated per epoch (churn.go). Jitter profiles and fault
		// injection do not apply — the mutation path is synchronous.
		if churn != ChurnOff {
			for _, graphName := range churnGraphs {
				add("churn", graphName, "single4", ProfileNone, FaultNone, "")
			}
		}
	}
	return specs
}

// buildGraph constructs the named graph family from r. Sizes are drawn
// from r too, so every seed explores a different shape.
func buildGraph(name string, r *xrand.Rand, short bool) *graph.Graph {
	lo, hi := 200, 900
	if short {
		lo, hi = 80, 250
	}
	n := lo + r.Intn(hi-lo)
	cfg := gen.Config{Seed: r.Uint64(), MaxWeight: 100}
	switch name {
	case "uniform":
		return gen.Uniform(n, 3*n, cfg)
	case "erdos":
		return gen.ErdosRenyi(n, 4*n, cfg)
	case "rmat":
		scale := 7
		if !short {
			scale = 8 + r.Intn(2)
		}
		return gen.RMAT(scale, 8, gen.DefaultRMAT(), cfg)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid(side, side, cfg)
	case "star":
		return gen.Star(n)
	case "cycle":
		return gen.Cycle(n)
	}
	panic(fmt.Sprintf("stress: unknown graph family %q", name))
}

// Run executes the matrix and returns the report. It never returns a
// non-nil error for run failures — those are in the report; the error is
// reserved for invalid options.
func Run(opts Options) (Report, error) {
	for _, p := range opts.Profiles {
		if _, err := ParseProfile(string(p)); err != nil {
			return Report{}, err
		}
	}
	for _, f := range opts.Faults {
		if _, err := ParseFault(string(f)); err != nil {
			return Report{}, err
		}
	}
	if _, err := ParseChurn(string(opts.Churn)); err != nil {
		return Report{}, err
	}
	specs := enumerate(opts)
	if opts.Only != nil && (*opts.Only < 0 || *opts.Only >= len(specs)) {
		return Report{}, fmt.Errorf("stress: -run %d out of range, matrix has %d runs", *opts.Only, len(specs))
	}
	log := opts.Log
	if log == nil {
		log = io.Discard
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	rep := Report{}
	for _, spec := range specs {
		if opts.Only != nil && spec.Index != *opts.Only {
			continue
		}
		rep.Total++
		err := runWithTimeout(spec, opts.Short, timeout)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{Spec: spec, Err: err})
			fmt.Fprintf(log, "FAIL %s\n     %v\n", spec, err)
			if opts.ArtifactDir != "" && spec.Algo == "acic" {
				dumpArtifacts(spec, opts.Short, opts.ArtifactDir, timeout, log)
			}
		} else if opts.Verbose {
			fmt.Fprintf(log, "ok   %s\n", spec)
		}
	}
	return rep, nil
}

// runWithTimeout guards one run with a wall-clock watchdog: the loud
// failure mode of a lost or miscounted message is a hang (quiescence never
// fires because the counters stay unequal), which must surface as a
// replayable failure, not stall the harness. A timed-out run's goroutine is
// abandoned; acceptable for a stress tool already on its failure path.
func runWithTimeout(spec Spec, short bool, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- runSpec(spec, short) }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("hang: no termination after %v (lost or unaccounted message keeps the quiescence counters unequal)", timeout)
	}
}

// specInputs reconstructs a run's deterministic inputs from its seed — the
// topology, graph, source, jitter stream and fault plan, drawn in exactly
// the order runSpec consumes them — so an instrumented replay sees the
// identical schedule envelope as the failed run. The fault seed is drawn
// last (and drawn even for FaultNone specs) so the classic matrix keeps
// its historical per-seed inputs.
func specInputs(spec Spec, short bool) (netsim.Topology, *graph.Graph, int, netsim.JitterFunc, netsim.FaultPlan) {
	r := xrand.New(spec.Seed)
	topo := topoByName(spec.Topo)
	g := buildGraph(spec.Graph, r, short)
	src := r.Intn(g.NumVertices())
	jit := NewJitter(spec.Profile, r.Uint64(), topo)
	fault := spec.Fault
	if fault == "" {
		fault = FaultNone
	}
	fp := NewFaultPlan(fault, r.Uint64(), topo)
	return topo, g, src, jit, fp
}

// faulted reports whether spec runs over an actively hostile fabric.
func (s Spec) faulted() bool { return s.Fault != "" && s.Fault != FaultNone }

// runSpec executes one run and applies the oracle and invariant checks.
func runSpec(spec Spec, short bool) error {
	if spec.Algo == "fabric" {
		return fabricStress(spec.Seed, spec.Profile, short)
	}
	if spec.Algo == "churn" {
		return churnStress(spec, short)
	}
	topo, g, src, jit, fp := specInputs(spec, short)
	lat := netsim.DefaultLatency()

	var (
		dist  []float64
		audit runtime.Audit
		ts    tram.Stats
		err   error
	)
	switch spec.Algo {
	case "acic":
		copts := core.Options{Topo: topo, Latency: lat, Jitter: jit}
		if spec.Fabric == "tcp" {
			// Real sockets own their timing: no latency model, no jitter,
			// no fault plan. The oracle and the conservation checks are
			// unchanged — the run must balance the extended ledger identity
			// including the per-process boundary counters.
			copts = core.Options{Topo: topo, Transport: core.TransportTCP}
		}
		if spec.faulted() {
			copts.Fault = fp
			copts.Reliability = &relnet.Config{}
		}
		var res *core.Result
		res, err = core.Run(g, src, copts)
		if err == nil {
			dist, audit, ts = res.Dist, res.Stats.Audit, res.Stats.TramStats
		}
	case "deltastep":
		var res *deltastep.Result
		res, err = deltastep.Run(g, src, deltastep.Options{Topo: topo, Latency: lat, Jitter: jit})
		if err == nil {
			dist, audit, ts = res.Dist, res.Stats.Audit, res.Stats.TramStats
		}
	case "delta2d":
		var res *delta2d.Result
		res, err = delta2d.Run(g, src, delta2d.Options{Topo: topo, Latency: lat, Jitter: jit})
		if err == nil {
			dist, audit, ts = res.Dist, res.Stats.Audit, res.Stats.TramStats
		}
	case "distctrl":
		var res *distctrl.Result
		res, err = distctrl.Run(g, src, distctrl.Options{Topo: topo, Latency: lat, Jitter: jit})
		if err == nil {
			dist, audit, ts = res.Dist, res.Stats.Audit, res.Stats.TramStats
		}
	case "kla":
		var res *kla.Result
		res, err = kla.Run(g, src, kla.Options{Topo: topo, Latency: lat, Jitter: jit})
		if err == nil {
			dist, audit, ts = res.Dist, res.Stats.Audit, res.Stats.TramStats
		}
	case "cc":
		var res *cc.Result
		res, err = cc.Run(g, cc.Options{Topo: topo, Latency: lat, Jitter: jit})
		if err != nil {
			return err
		}
		want := cc.SequentialCC(g)
		for v := range want {
			if res.Labels[v] != want[v] {
				return fmt.Errorf("oracle: label[%d] = %d, want %d", v, res.Labels[v], want[v])
			}
		}
		return checkInvariants(res.Stats.Audit, res.Stats.TramStats, false)
	default:
		return fmt.Errorf("stress: unknown algorithm %q", spec.Algo)
	}
	if err != nil {
		return err
	}
	want := seq.Dijkstra(g, src)
	if i := seq.FirstMismatch(want.Dist, dist); i >= 0 {
		return fmt.Errorf("oracle: dist[%d] = %g, want %g (source %d)", i, dist[i], want.Dist[i], src)
	}
	return checkInvariants(audit, ts, spec.faulted())
}

// dumpArtifacts replays one failing acic spec with the full observability
// stack attached — trace recorder, metrics registry, threshold audit — and
// writes the three artifacts under dir/run-<index>/. The replay draws the
// same seeds as the failed run, so under the deterministic delay fabric it
// walks the same schedule envelope. A replay that hangs (the loud
// message-loss mode) is abandoned without a dump: its recorder and
// registry are still being written by the stuck goroutine, so reading
// them would race.
func dumpArtifacts(spec Spec, short bool, artifactDir string, timeout time.Duration, log io.Writer) {
	dir := filepath.Join(artifactDir, fmt.Sprintf("run-%d", spec.Index))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(log, "artifacts: %v\n", err)
		return
	}
	topo, g, src, jit, fp := specInputs(spec, short)
	reg := metrics.New(topo.TotalPEs())
	rec := trace.New(topo.TotalPEs(), 1<<16)
	p := core.DefaultParams()
	p.AuditTrace = true
	copts := core.Options{
		Topo:    topo,
		Latency: netsim.DefaultLatency(),
		Jitter:  jit,
		Params:  p,
		Trace:   rec,
		Metrics: reg,
	}
	if spec.Fabric == "tcp" {
		// Mirror runSpec: a TCP replay must not install sim-only knobs,
		// which core.Run rejects under TransportTCP.
		copts.Latency = netsim.LatencyModel{}
		copts.Jitter = nil
		copts.Transport = core.TransportTCP
	}
	if spec.faulted() {
		copts.Fault = fp
		copts.Reliability = &relnet.Config{}
	}
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := core.Run(g, src, copts)
		done <- outcome{res, err}
	}()
	var auditRecs []core.ThresholdAudit
	select {
	case o := <-done:
		if o.err != nil {
			fmt.Fprintf(log, "artifacts: replay of run %d errored before producing artifacts: %v\n", spec.Index, o.err)
			return
		}
		auditRecs = o.res.Stats.AuditTrace
	case <-time.After(timeout):
		fmt.Fprintf(log, "artifacts: replay of run %d hung; skipping dump (recorder still live)\n", spec.Index)
		return
	}
	for _, a := range []struct {
		name  string
		write func(io.Writer) error
	}{
		{"trace-chrome.json", rec.WriteChrome},
		{"metrics.json", reg.Snapshot().WriteJSON},
		{"audit.jsonl", func(w io.Writer) error { return core.WriteAuditJSONL(w, auditRecs) }},
	} {
		f, err := os.Create(filepath.Join(dir, a.name))
		if err == nil {
			err = a.write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(log, "artifacts: %s: %v\n", a.name, err)
			return
		}
	}
	fmt.Fprintf(log, "artifacts: run %d replayed, wrote %s/{trace-chrome.json,metrics.json,audit.jsonl}\n", spec.Index, dir)
}

// checkInvariants audits the conservation ledger of a completed run.
// faulted marks runs over an actively hostile fabric: drops (and dups, and
// the retransmits healing them) are then expected and legal — the extended
// identity must still balance exactly, but NetDropped != 0 is no longer a
// failure.
func checkInvariants(a runtime.Audit, ts tram.Stats, faulted bool) error {
	if u := a.Unaccounted(); u != 0 {
		return fmt.Errorf("conservation: %d messages unaccounted (sent=%d retrans=%d netdup=%d acksent=%d delivered=%d netq=%d netdrop=%d backlog=%d droppedAtExit=%d dupdiscard=%d ackconsumed=%d)",
			u, a.Sent, a.Retransmits, a.NetDuplicated, a.AcksSent, a.Delivered, a.NetQueue, a.NetDropped, a.MailboxBacklog, a.DroppedAtExit, a.DupDiscarded, a.AcksConsumed)
	}
	if a.NetQueue != 0 {
		return fmt.Errorf("conservation: fabric not drained, NetQueue=%d after Close", a.NetQueue)
	}
	if !faulted && a.NetDropped != 0 {
		return fmt.Errorf("conservation: fabric dropped %d messages without an injected filter", a.NetDropped)
	}
	if ts.PoolGets != ts.PoolPuts {
		return fmt.Errorf("tram pool leak: PoolGets=%d PoolPuts=%d", ts.PoolGets, ts.PoolPuts)
	}
	return nil
}
