// Package stress is the seeded differential schedule-stress harness.
//
// Asynchronous label-correcting algorithms are notoriously sensitive to
// message timing: a schedule that delays one tier, reorders equal-deadline
// messages, or releases traffic in bursts can expose termination and
// conservation bugs that uniform schedules never reach (Blanco et al.,
// "Delayed Asynchronous Iterative Graph Algorithms"; the paper's own §II-D
// two-snapshot quiescence rule exists precisely because single snapshots
// race with in-flight updates). This package deliberately perturbs the
// simulated fabric's delivery schedule with deterministic, seeded jitter
// and then checks every run two ways:
//
//   - differentially, against the sequential oracles (seq.Dijkstra for the
//     five SSSP algorithms, cc.SequentialCC for connected components), and
//   - by auditing conservation invariants after the run: the runtime's
//     message ledger balances exactly (runtime.Audit.Unaccounted() == 0),
//     the fabric is drained (NetQueue == 0), and tramlib returned every
//     pooled batch (PoolGets == PoolPuts).
//
// Every run is fully determined by one uint64 seed, so any counterexample
// schedule is replayable: the harness prints the failing spec and the exact
// command that re-executes only that run (see cmd/acic-stress).
package stress

import (
	"fmt"
	"sync/atomic"
	"time"

	"acic/internal/netsim"
	"acic/internal/xrand"
)

// Profile names one adversarial latency perturbation. Profiles are
// deterministic: the jitter applied to the n-th message of a (src, dst)
// pair depends only on (seed, src, dst, n), never on scheduling order, so
// a seed replays the same perturbation even though the interleaving of
// concurrent senders varies.
type Profile string

const (
	// ProfileNone leaves the latency model untouched (control group).
	ProfileNone Profile = "none"
	// ProfileUniform adds bounded uniform jitter to every message — the
	// generic noisy-fabric schedule.
	ProfileUniform Profile = "uniform"
	// ProfileStallTier stalls every message of one seed-chosen
	// communication tier by two orders of magnitude, modeling a congested
	// interconnect level: work racing ahead of a slow tier is exactly the
	// delayed-update regime of Blanco et al.
	ProfileStallTier Profile = "stall-tier"
	// ProfileReorder quantizes jittered deadlines onto a coarse grid so
	// that many unrelated messages collide on equal deadlines, forcing the
	// fabric to break mass ties — the per-lane seq tiebreak, exercised at
	// zero jitter only for same-instant sends, carries whole batches here.
	ProfileReorder Profile = "reorder"
	// ProfileBurst alternates hold-back and release phases per pair:
	// blocks of messages are stalled together and then drain as a burst,
	// the arrival pattern that floods mailboxes and quiescence windows.
	ProfileBurst Profile = "burst"
)

// Profiles returns every adversarial profile (excluding ProfileNone),
// in the order the stress matrix enumerates them.
func Profiles() []Profile {
	return []Profile{ProfileUniform, ProfileStallTier, ProfileReorder, ProfileBurst}
}

// ParseProfile validates a profile name.
func ParseProfile(s string) (Profile, error) {
	switch p := Profile(s); p {
	case ProfileNone, ProfileUniform, ProfileStallTier, ProfileReorder, ProfileBurst:
		return p, nil
	}
	return "", fmt.Errorf("stress: unknown profile %q (have none, uniform, stall-tier, reorder, burst)", s)
}

// msgJitter derives the deterministic per-message random word: it depends
// only on (seed, src, dst, n), so replays under any goroutine interleaving
// perturb each message identically.
func msgJitter(seed uint64, pair int, n uint64) uint64 {
	return xrand.NewSplitMix64(seed ^ (uint64(pair)+1)*0x9e3779b97f4a7c15 ^ (n+1)*0xbf58476d1ce4e5b9).Next()
}

// jitterState carries the per-pair message counters a JitterFunc needs to
// identify the n-th send of each pair without depending on global order.
type jitterState struct {
	seed  uint64
	topo  netsim.Topology
	pairs []atomic.Uint64
}

func newJitterState(seed uint64, topo netsim.Topology) *jitterState {
	n := topo.TotalPEs()
	return &jitterState{seed: seed, topo: topo, pairs: make([]atomic.Uint64, n*n)}
}

// next returns the per-message random word and the message's per-pair index.
func (js *jitterState) next(src, dst int) (word, n uint64) {
	pair := src*js.topo.TotalPEs() + dst
	n = js.pairs[pair].Add(1) - 1
	return msgJitter(js.seed, pair, n), n
}

// NewJitter builds the netsim.JitterFunc implementing profile, seeded with
// seed over topo. ProfileNone returns nil (no hook installed). The returned
// function is safe for concurrent use; FIFO per (src, dst) pair is enforced
// by the fabric itself, so profiles are free to hand out non-monotone
// delays.
func NewJitter(profile Profile, seed uint64, topo netsim.Topology) netsim.JitterFunc {
	if profile == ProfileNone {
		return nil
	}
	js := newJitterState(seed, topo)
	const (
		uniformSpan = 30 * time.Microsecond
		lightSpan   = 5 * time.Microsecond
		stall       = 400 * time.Microsecond
		grid        = 20 * time.Microsecond
		burstStall  = 300 * time.Microsecond
		burstBlock  = 32
	)
	switch profile {
	case ProfileUniform:
		return func(src, dst, size int, base time.Duration) time.Duration {
			w, _ := js.next(src, dst)
			return base + time.Duration(w%uint64(uniformSpan))
		}
	case ProfileStallTier:
		// The stalled tier is itself seed-chosen among the non-self tiers.
		stalled := netsim.Tier(1 + xrand.NewSplitMix64(seed).Next()%3)
		return func(src, dst, size int, base time.Duration) time.Duration {
			w, _ := js.next(src, dst)
			if js.topo.TierOf(src, dst) == stalled {
				return base + stall + time.Duration(w%uint64(stall))
			}
			return base + time.Duration(w%uint64(lightSpan))
		}
	case ProfileReorder:
		return func(src, dst, size int, base time.Duration) time.Duration {
			w, _ := js.next(src, dst)
			d := base + time.Duration(w%uint64(2*grid))
			return d / grid * grid // quantize: mass equal-deadline collisions
		}
	case ProfileBurst:
		return func(src, dst, size int, base time.Duration) time.Duration {
			w, n := js.next(src, dst)
			if (n/burstBlock)%2 == 1 {
				return base + burstStall + time.Duration(w%uint64(lightSpan))
			}
			return time.Duration(w % uint64(lightSpan))
		}
	}
	panic(fmt.Sprintf("stress: unknown profile %q", profile))
}
