package stress

// The failing-seed artifact dump: when -artifacts is set, every failing
// acic run is replayed with the trace recorder, metrics registry and
// threshold audit attached, and all three exports land on disk. Forcing a
// genuine oracle failure would require a bug, so the test drives the dump
// path directly on a healthy spec — the triggering condition in Run is a
// two-line guard exercised by the harness itself.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acic/internal/core"
)

func TestDumpArtifacts(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Index: 7, Algo: "acic", Graph: "uniform", Topo: "single4", Profile: ProfileUniform, Seed: 0xfeedbeef}
	var log bytes.Buffer
	dumpArtifacts(spec, true, dir, time.Minute, &log)
	sub := filepath.Join(dir, "run-7")

	// Chrome trace: a traceEvents object with at least the PE name metadata.
	raw, err := os.ReadFile(filepath.Join(sub, "trace-chrome.json"))
	if err != nil {
		t.Fatalf("trace artifact missing: %v\n%s", err, log.String())
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace artifact is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace artifact has no events")
	}

	// Metrics snapshot: well-formed, with the core instruments present.
	raw, err = os.ReadFile(filepath.Join(sub, "metrics.json"))
	if err != nil {
		t.Fatalf("metrics artifact missing: %v", err)
	}
	var m struct {
		NumPEs   int `json:"num_pes"`
		Counters []struct {
			Name  string `json:"name"`
			Total int64  `json:"total"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics artifact is not valid JSON: %v", err)
	}
	if m.NumPEs != 4 {
		t.Errorf("metrics num_pes = %d, want 4 (single4 topology)", m.NumPEs)
	}
	found := false
	for _, c := range m.Counters {
		if c.Name == "core.updates_created" && c.Total > 0 {
			found = true
		}
	}
	if !found {
		t.Error("metrics artifact lacks a positive core.updates_created counter")
	}

	// Audit: one valid JSONL record per line, at least one line.
	raw, err = os.ReadFile(filepath.Join(sub, "audit.jsonl"))
	if err != nil {
		t.Fatalf("audit artifact missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("audit artifact is empty")
	}
	for i, line := range lines {
		var rec core.ThresholdAudit
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("audit line %d is not valid JSON: %v", i, err)
		}
	}

	if !strings.Contains(log.String(), "artifacts: run 7 replayed") {
		t.Errorf("dump did not log success:\n%s", log.String())
	}
}
