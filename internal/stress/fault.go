package stress

// Fault profiles: seeded, deterministic fabric-level fault injection —
// probabilistic drop, duplication and adversarial reordering — layered
// under the reliable-delivery stack (internal/relnet). Where the jitter
// profiles perturb WHEN a message arrives, fault profiles attack WHETHER
// and HOW OFTEN it arrives; the harness runs acic over them with
// reliability enabled and still demands oracle-exact distances and a
// balanced conservation ledger.

import (
	"fmt"
	"time"

	"acic/internal/netsim"
)

// Fault names one fabric fault-injection profile. Like jitter profiles,
// fault decisions are deterministic in (seed, src, dst, n) — the n-th send
// of a pair always meets the same fate under a given seed — so failing
// schedules replay.
type Fault string

const (
	// FaultNone installs no filters (the default for the classic matrix).
	FaultNone Fault = "none"
	// FaultDrop discards ~3% of sends. Without relnet this hangs any run
	// loudly; with it, every loss is retransmitted until a copy survives.
	FaultDrop Fault = "drop"
	// FaultDup delivers an extra ghost copy for ~4% of sends, landing at a
	// perturbed deadline outside the per-pair FIFO clamp.
	FaultDup Fault = "dup"
	// FaultReorder releases ~4% of sends from the per-pair FIFO clamp with
	// extra delay, so later traffic overtakes them.
	FaultReorder Fault = "reorder"
	// FaultLossy combines drop, duplication and reordering at ~2% each —
	// the full lossy-transport gauntlet.
	FaultLossy Fault = "lossy"
)

// Faults returns every fault profile (excluding FaultNone), in the order
// the stress matrix enumerates them.
func Faults() []Fault {
	return []Fault{FaultDrop, FaultDup, FaultReorder, FaultLossy}
}

// ParseFault validates a fault profile name.
func ParseFault(s string) (Fault, error) {
	switch f := Fault(s); f {
	case FaultNone, FaultDrop, FaultDup, FaultReorder, FaultLossy:
		return f, nil
	}
	return "", fmt.Errorf("stress: unknown fault %q (have none, drop, dup, reorder, lossy)", s)
}

// Stream-separation constants so the drop, dup and reorder decision
// streams of one seed are independent.
const (
	faultStreamDrop    = 0xd1b54a32d192ed03
	faultStreamDup     = 0xaef17502108ef2d9
	faultStreamReorder = 0x94d049bb133111eb
)

// NewFaultPlan builds the seeded netsim.FaultPlan implementing f over
// topo. FaultNone returns the empty plan. Retransmitted frames re-enter
// the filters with fresh per-pair indices, so a retried message faces an
// independent (still deterministic) fate — under sub-unity drop rates
// every frame eventually gets through.
func NewFaultPlan(f Fault, seed uint64, topo netsim.Topology) netsim.FaultPlan {
	var dropPM, dupPM, reorderPM uint64 // per-mille rates
	switch f {
	case FaultNone:
		return netsim.FaultPlan{}
	case FaultDrop:
		dropPM = 30
	case FaultDup:
		dupPM = 40
	case FaultReorder:
		reorderPM = 40
	case FaultLossy:
		dropPM, dupPM, reorderPM = 20, 20, 20
	default:
		panic(fmt.Sprintf("stress: unknown fault %q", f))
	}
	var plan netsim.FaultPlan
	if dropPM > 0 {
		st := newJitterState(seed^faultStreamDrop, topo)
		plan.Drop = func(src, dst, size int) bool {
			w, _ := st.next(src, dst)
			return w%1000 < dropPM
		}
	}
	if dupPM > 0 {
		st := newJitterState(seed^faultStreamDup, topo)
		plan.Dup = func(src, dst, size int) (time.Duration, bool) {
			w, _ := st.next(src, dst)
			if w%1000 >= dupPM {
				return 0, false
			}
			return time.Duration((w >> 10) % uint64(200*time.Microsecond)), true
		}
	}
	if reorderPM > 0 {
		st := newJitterState(seed^faultStreamReorder, topo)
		plan.Reorder = func(src, dst, size int) (time.Duration, bool) {
			w, _ := st.next(src, dst)
			if w%1000 >= reorderPM {
				return 0, false
			}
			return time.Duration((w >> 10) % uint64(500*time.Microsecond)), true
		}
	}
	return plan
}
