package stress

// Fault injection under adversarial schedules: the harness's core safety
// claim is that a lost update fails LOUDLY — the conservation counters stay
// permanently unequal and quiescence never fires — rather than silently, as
// wrong results. These tests drop one message underneath a jittered
// schedule and check both the hang and the ledger; the control run shows
// the same schedule terminates cleanly without the drop.

import (
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/netsim"
	"acic/internal/runtime"
)

// relay forwards a countdown between two PEs and records quiescence.
type relay struct {
	runtime.NopControl
	hops     *atomic.Int64
	quiesced *atomic.Int64
}

func (h *relay) Deliver(pe *runtime.PE, msg any) {
	if _, ok := msg.(runtime.Quiescence); ok {
		h.quiesced.Add(1)
		pe.Exit()
		return
	}
	n := msg.(int)
	h.hops.Add(1)
	if n > 1 {
		pe.Send(1-pe.Index(), n-1, 1)
	}
}

func (h *relay) Idle(pe *runtime.PE) bool { return false }

func relayConfig(profile Profile, seed uint64) runtime.Config {
	topo := netsim.SingleNode(2)
	return runtime.Config{
		Topo:           topo,
		Latency:        netsim.LatencyModel{IntraProcess: 100 * time.Microsecond},
		QuiescencePoll: 200 * time.Microsecond,
		Jitter:         NewJitter(profile, seed, topo),
	}
}

// TestDroppedUpdateUnderStressHangsLoudly drops the 5th message of a relay
// chain running under every adversarial profile. The chain must stall, the
// runtime-level detector must never fire, and the ledger must show the
// loss: Sent > Delivered forever, with the drop visible in NetDropped.
func TestDroppedUpdateUnderStressHangsLoudly(t *testing.T) {
	for i, profile := range Profiles() {
		profile := profile
		t.Run(string(profile), func(t *testing.T) {
			var hops, quiesced atomic.Int64
			rt, err := runtime.New(relayConfig(profile, uint64(i)+1))
			if err != nil {
				t.Fatal(err)
			}
			var count atomic.Int64
			rt.Network().SetDropFilter(func(src, dst, size int) bool {
				return count.Add(1) == 5
			})
			rt.Start(func(pe *runtime.PE) runtime.Handler {
				return &relay{hops: &hops, quiesced: &quiesced}
			})
			rt.Inject(0, 20)

			time.Sleep(50 * time.Millisecond)
			if got := quiesced.Load(); got != 0 {
				t.Errorf("quiescence fired %d times despite a lost message", got)
			}
			if got := hops.Load(); got >= 20 {
				t.Errorf("chain completed (%d hops) despite the drop", got)
			}
			a := rt.Audit()
			if a.Sent <= a.Delivered {
				t.Errorf("loss not visible in the ledger: sent=%d delivered=%d", a.Sent, a.Delivered)
			}
			if a.NetDropped != 1 {
				t.Errorf("NetDropped = %d, want 1", a.NetDropped)
			}
			rt.RequestExit()
			rt.Wait()
		})
	}
}

// TestNoDropUnderStressQuiescesCleanly is the control: the identical
// jittered schedules with no drop terminate, quiesce exactly once, and
// leave a balanced ledger.
func TestNoDropUnderStressQuiescesCleanly(t *testing.T) {
	for i, profile := range Profiles() {
		profile := profile
		t.Run(string(profile), func(t *testing.T) {
			var hops, quiesced atomic.Int64
			rt, err := runtime.New(relayConfig(profile, uint64(i)+1))
			if err != nil {
				t.Fatal(err)
			}
			rt.Start(func(pe *runtime.PE) runtime.Handler {
				return &relay{hops: &hops, quiesced: &quiesced}
			})
			rt.Inject(0, 20)

			done := make(chan struct{})
			go func() {
				rt.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				rt.RequestExit()
				t.Fatal("runtime did not terminate")
			}
			if hops.Load() != 20 {
				t.Errorf("hops = %d, want 20", hops.Load())
			}
			if quiesced.Load() != 1 {
				t.Errorf("quiescence fired %d times, want 1", quiesced.Load())
			}
			if a := rt.Audit(); a.Unaccounted() != 0 {
				t.Errorf("unaccounted = %d, ledger %+v", a.Unaccounted(), a)
			}
		})
	}
}
