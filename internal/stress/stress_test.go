package stress

import (
	"strings"
	"testing"
	"time"

	"acic/internal/netsim"
)

func TestParseProfile(t *testing.T) {
	for _, p := range append(Profiles(), ProfileNone) {
		got, err := ParseProfile(string(p))
		if err != nil || got != p {
			t.Errorf("ParseProfile(%q) = (%v, %v)", p, got, err)
		}
	}
	if _, err := ParseProfile("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestEnumerateDeterministic pins the replay contract: the same options
// must enumerate the identical run list — specs, order, and per-run seeds —
// because a printed "-run N" replay command depends on it.
func TestEnumerateDeterministic(t *testing.T) {
	opts := Options{Seed: 42, Rounds: 2, Short: true}
	a, b := enumerate(opts), enumerate(opts)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Errorf("spec %d has Index %d", i, a[i].Index)
		}
	}
	// Different master seeds must draw different per-run seeds.
	c := enumerate(Options{Seed: 43, Rounds: 2, Short: true})
	if c[0].Seed == a[0].Seed {
		t.Error("per-run seed did not change with master seed")
	}
}

// TestJitterDeterministicPerMessage checks the per-message independence the
// replay story needs: the delay assigned to the n-th message of a pair
// depends only on (seed, pair, n), not on the order in which other pairs'
// messages interleave with it.
func TestJitterDeterministicPerMessage(t *testing.T) {
	topo := topoByName("single4")
	for _, p := range Profiles() {
		j1 := NewJitter(p, 7, topo)
		j2 := NewJitter(p, 7, topo)
		base := 3 * time.Microsecond
		// Stream 1: pair (0,1) alone. Stream 2: pair (0,1) interleaved with
		// (2,3) traffic. Same per-pair delays must come out.
		var a, b []time.Duration
		for i := 0; i < 50; i++ {
			a = append(a, j1(0, 1, 1, base))
		}
		for i := 0; i < 50; i++ {
			b = append(b, j2(0, 1, 1, base))
			j2(2, 3, 1, base)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: message %d of pair (0,1) jittered differently under interleaving: %v vs %v", p, i, a[i], b[i])
				break
			}
		}
	}
}

// TestRunShortSmoke exercises the full short matrix once — every algorithm,
// every profile, oracle and conservation checks — as the suite-level
// guarantee that the harness itself stays runnable.
func TestRunShortSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("the short matrix still runs every algorithm; skip under -short")
	}
	rep, err := Run(Options{Seed: 1, Short: true, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 {
		t.Fatal("no runs executed")
	}
	for _, f := range rep.Failures {
		t.Errorf("FAIL %s: %v", f.Spec, f.Err)
	}
}

// TestRunOnlySelectsSingleRun pins the -run replay path.
func TestRunOnlySelectsSingleRun(t *testing.T) {
	zero, huge := 0, 10_000
	rep, err := Run(Options{Seed: 1, Short: true, Only: &zero, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 {
		t.Errorf("Total = %d, want 1", rep.Total)
	}
	if _, err := Run(Options{Seed: 1, Short: true, Only: &huge}); err == nil {
		t.Error("out-of-range -run accepted")
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if _, err := Run(Options{Seed: 1, Profiles: []Profile{"bogus"}}); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestParseFault(t *testing.T) {
	for _, f := range append(Faults(), FaultNone) {
		got, err := ParseFault(string(f))
		if err != nil || got != f {
			t.Errorf("ParseFault(%q) = (%v, %v)", f, got, err)
		}
	}
	if _, err := ParseFault("bogus"); err == nil {
		t.Error("unknown fault accepted")
	}
}

func TestRunRejectsBadFault(t *testing.T) {
	if _, err := Run(Options{Seed: 1, Faults: []Fault{"bogus"}}); err == nil {
		t.Error("bad fault accepted")
	}
}

// TestFaultMatrixEnumeration pins the fault sub-matrix's shape: fault runs
// are acic-only, carry a named fault in their String (the replay breadcrumb),
// and Faults: []Fault{FaultNone} disables the sub-matrix without disturbing
// the classic specs' indices or seeds.
func TestFaultMatrixEnumeration(t *testing.T) {
	// Churn off: this test pins the fault sub-matrix as the enumeration's
	// suffix; the churn sub-matrix rides after it and has its own test.
	with := enumerate(Options{Seed: 42, Short: true, Churn: ChurnOff})
	without := enumerate(Options{Seed: 42, Short: true, Churn: ChurnOff, Faults: []Fault{FaultNone}})
	if len(with) <= len(without) {
		t.Fatalf("fault sub-matrix added no runs: %d vs %d", len(with), len(without))
	}
	for i := range without {
		if with[i] != without[i] {
			t.Fatalf("classic spec %d disturbed by fault sub-matrix: %+v vs %+v", i, with[i], without[i])
		}
	}
	seen := map[Fault]bool{}
	for _, s := range with[len(without):] {
		if s.Algo != "acic" {
			t.Errorf("fault run for non-acic algo: %+v", s)
		}
		if !s.faulted() {
			t.Errorf("fault sub-matrix spec without a fault: %+v", s)
		}
		if !strings.Contains(s.String(), "fault="+string(s.Fault)) {
			t.Errorf("Spec.String misses the fault: %s", s)
		}
		seen[s.Fault] = true
	}
	for _, f := range Faults() {
		if !seen[f] {
			t.Errorf("short fault sub-matrix never enumerates %s", f)
		}
	}
}

// TestTCPMatrixEnumeration pins the TCP sub-matrix's shape: every sockfab
// spec is acic-only, jitter- and fault-free, labels its fabric in String()
// (the replay breadcrumb), and is immediately preceded by the identical
// shape on the simulated fabric — the same-spec-on-both-fabrics contract.
func TestTCPMatrixEnumeration(t *testing.T) {
	specs := enumerate(Options{Seed: 42, Short: true, Churn: ChurnOff})
	var tcp []Spec
	for i, s := range specs {
		if s.Fabric == "" {
			continue
		}
		if s.Fabric != "tcp" {
			t.Fatalf("unknown fabric %q in %+v", s.Fabric, s)
		}
		tcp = append(tcp, s)
		if s.Algo != "acic" || s.Profile != ProfileNone || s.faulted() {
			t.Errorf("tcp spec with sim-only knobs: %+v", s)
		}
		if !strings.Contains(s.String(), "fabric=tcp") {
			t.Errorf("Spec.String misses the fabric: %s", s)
		}
		if i == 0 {
			t.Fatalf("tcp spec %+v has no netsim twin before it", s)
		}
		twin := specs[i-1]
		if twin.Fabric != "" || twin.Algo != s.Algo || twin.Graph != s.Graph ||
			twin.Topo != s.Topo || twin.Profile != s.Profile || twin.Fault != s.Fault {
			t.Errorf("tcp spec %+v not paired with a netsim twin (%+v)", s, twin)
		}
	}
	if len(tcp) == 0 {
		t.Fatal("short matrix enumerates no tcp specs")
	}
	seenMulti := false
	for _, s := range tcp {
		if topoByName(s.Topo).TotalProcs() > 1 {
			seenMulti = true
		}
	}
	if !seenMulti {
		t.Error("no tcp spec spans multiple processes")
	}
}

// TestTCPRunSmoke executes one sockfab run end to end through the harness:
// the spec's netsim twin ran in the short smoke, so a green pair is the
// same-spec-on-both-fabrics guarantee.
func TestTCPRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full TCP mesh")
	}
	specs := enumerate(Options{Seed: 1, Short: true, Churn: ChurnOff})
	idx := -1
	for _, s := range specs {
		if s.Fabric == "tcp" {
			idx = s.Index
			break
		}
	}
	if idx < 0 {
		t.Fatal("no tcp spec in the short matrix")
	}
	rep, err := Run(Options{Seed: 1, Short: true, Churn: ChurnOff, Only: &idx, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || len(rep.Failures) != 0 {
		t.Fatalf("tcp run: total %d failures %v", rep.Total, rep.Failures)
	}
}

// TestChurnMatrixEnumeration pins the churn sub-matrix's shape: ChurnOn
// appends churn specs after the classic+fault matrix without disturbing
// their indices or seeds, ChurnOff removes exactly those specs, and
// ChurnOnly enumerates nothing else.
func TestChurnMatrixEnumeration(t *testing.T) {
	on := enumerate(Options{Seed: 42, Short: true})
	off := enumerate(Options{Seed: 42, Short: true, Churn: ChurnOff})
	only := enumerate(Options{Seed: 42, Short: true, Churn: ChurnOnly})
	if len(on) != len(off)+len(only) {
		t.Fatalf("matrix sizes: on=%d off=%d only=%d", len(on), len(off), len(only))
	}
	for i := range off {
		if on[i] != off[i] {
			t.Fatalf("classic spec %d disturbed by churn sub-matrix: %+v vs %+v", i, on[i], off[i])
		}
	}
	for _, s := range on[len(off):] {
		if s.Algo != "churn" {
			t.Errorf("churn suffix contains non-churn spec: %+v", s)
		}
		if s.Profile != ProfileNone || s.faulted() {
			t.Errorf("churn spec with jitter or faults: %+v", s)
		}
	}
	for _, s := range only {
		if s.Algo != "churn" {
			t.Errorf("ChurnOnly enumerated %+v", s)
		}
	}
	if _, err := Run(Options{Seed: 1, Churn: "bogus"}); err == nil {
		t.Error("bad churn mode accepted")
	}
}

// TestChurnRunSmoke executes one churn run end to end through the harness.
func TestChurnRunSmoke(t *testing.T) {
	only := 0
	rep, err := Run(Options{Seed: 3, Short: true, Churn: ChurnOnly, Only: &only})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || len(rep.Failures) != 0 {
		t.Fatalf("churn run: total %d failures %v", rep.Total, rep.Failures)
	}
}

// TestFaultPlanDeterministic checks the replay property of fault decisions:
// the fate of the n-th send of a pair depends only on (seed, pair, n), not
// on interleaving with other pairs' traffic.
func TestFaultPlanDeterministic(t *testing.T) {
	topo := topoByName("single4")
	for _, f := range Faults() {
		p1 := NewFaultPlan(f, 7, topo)
		p2 := NewFaultPlan(f, 7, topo)
		probe := func(p netsim.FaultPlan, interleave bool) []bool {
			var fates []bool
			for i := 0; i < 400; i++ {
				var hit bool
				switch {
				case p.Drop != nil:
					hit = p.Drop(0, 1, 1)
				case p.Dup != nil:
					_, hit = p.Dup(0, 1, 1)
				default:
					_, hit = p.Reorder(0, 1, 1)
				}
				fates = append(fates, hit)
				if interleave {
					if p.Drop != nil {
						p.Drop(2, 3, 1)
					}
				}
			}
			return fates
		}
		a, b := probe(p1, false), probe(p2, true)
		hits := 0
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: send %d of pair (0,1) fated differently under interleaving", f, i)
			}
			if a[i] {
				hits++
			}
		}
		if hits == 0 {
			t.Errorf("%s: 400 sends produced no fault decisions — rate too low to stress anything", f)
		}
	}
	if !NewFaultPlan(FaultNone, 7, topo).Empty() {
		t.Error("FaultNone produced a non-empty plan")
	}
}
