package stress

import (
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	for _, p := range append(Profiles(), ProfileNone) {
		got, err := ParseProfile(string(p))
		if err != nil || got != p {
			t.Errorf("ParseProfile(%q) = (%v, %v)", p, got, err)
		}
	}
	if _, err := ParseProfile("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestEnumerateDeterministic pins the replay contract: the same options
// must enumerate the identical run list — specs, order, and per-run seeds —
// because a printed "-run N" replay command depends on it.
func TestEnumerateDeterministic(t *testing.T) {
	opts := Options{Seed: 42, Rounds: 2, Short: true}
	a, b := enumerate(opts), enumerate(opts)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Errorf("spec %d has Index %d", i, a[i].Index)
		}
	}
	// Different master seeds must draw different per-run seeds.
	c := enumerate(Options{Seed: 43, Rounds: 2, Short: true})
	if c[0].Seed == a[0].Seed {
		t.Error("per-run seed did not change with master seed")
	}
}

// TestJitterDeterministicPerMessage checks the per-message independence the
// replay story needs: the delay assigned to the n-th message of a pair
// depends only on (seed, pair, n), not on the order in which other pairs'
// messages interleave with it.
func TestJitterDeterministicPerMessage(t *testing.T) {
	topo := topoByName("single4")
	for _, p := range Profiles() {
		j1 := NewJitter(p, 7, topo)
		j2 := NewJitter(p, 7, topo)
		base := 3 * time.Microsecond
		// Stream 1: pair (0,1) alone. Stream 2: pair (0,1) interleaved with
		// (2,3) traffic. Same per-pair delays must come out.
		var a, b []time.Duration
		for i := 0; i < 50; i++ {
			a = append(a, j1(0, 1, 1, base))
		}
		for i := 0; i < 50; i++ {
			b = append(b, j2(0, 1, 1, base))
			j2(2, 3, 1, base)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: message %d of pair (0,1) jittered differently under interleaving: %v vs %v", p, i, a[i], b[i])
				break
			}
		}
	}
}

// TestRunShortSmoke exercises the full short matrix once — every algorithm,
// every profile, oracle and conservation checks — as the suite-level
// guarantee that the harness itself stays runnable.
func TestRunShortSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("the short matrix still runs every algorithm; skip under -short")
	}
	rep, err := Run(Options{Seed: 1, Short: true, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 {
		t.Fatal("no runs executed")
	}
	for _, f := range rep.Failures {
		t.Errorf("FAIL %s: %v", f.Spec, f.Err)
	}
}

// TestRunOnlySelectsSingleRun pins the -run replay path.
func TestRunOnlySelectsSingleRun(t *testing.T) {
	zero, huge := 0, 10_000
	rep, err := Run(Options{Seed: 1, Short: true, Only: &zero, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 {
		t.Errorf("Total = %d, want 1", rep.Total)
	}
	if _, err := Run(Options{Seed: 1, Short: true, Only: &huge}); err == nil {
		t.Error("out-of-range -run accepted")
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if _, err := Run(Options{Seed: 1, Profiles: []Profile{"bogus"}}); err == nil {
		t.Error("bad profile accepted")
	}
}
