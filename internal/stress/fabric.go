package stress

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"acic/internal/netsim"
	"acic/internal/xrand"
)

// fabricMsg is the traceable payload the fabric hammer sends: the source PE
// and the message's per-pair sequence number, enough to verify per-pair
// FIFO at the receiver.
type fabricMsg struct {
	src int
	n   uint64
}

// pingMsg is the ping-phase payload: the callback acknowledges it on the
// owning worker's channel so exactly one message per worker is in flight.
type pingMsg struct {
	worker int
}

// fabricStress hammers a raw netsim.Network with concurrent senders under
// the given profile while a monitor goroutine samples QueueLen, and checks
// the fabric's own invariants — the layer below any algorithm:
//
//   - QueueLen is never negative (the pre-fix Send incremented the queued
//     counter after releasing the lane lock, so a fast deliver/decrement
//     could be observed first; a negative residue can cancel a real
//     in-flight message and make QueueLen read 0 with traffic outstanding,
//     which is exactly the false-quiescence window).
//   - Messages of one (src, dst) pair arrive in send order even though the
//     profile hands out non-monotone delays.
//   - After Close the fabric is drained: delivered == sent, QueueLen == 0.
//
// A nil jitter (ProfileNone) is the tightest-timing case: zero modeled
// latency makes deliver race send with the smallest possible window.
func fabricStress(seed uint64, profile Profile, short bool) error {
	topo := netsim.PaperNode(1)
	numPEs := topo.TotalPEs()
	model := netsim.ZeroLatency()
	if profile != ProfileNone {
		model = netsim.DefaultLatency()
	}

	perPair := 300
	senders := 8
	if short {
		perPair = 120
		senders = 4
	}

	// lastSeen[src*numPEs+dst] holds the last per-pair sequence number
	// delivered; the dispatcher is a single goroutine, so plain writes
	// would do, but the monitor reads sent/delivered concurrently.
	lastSeen := make([]int64, numPEs*numPEs)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var delivered, fifoViolations, underflow atomic.Int64
	var firstViolation atomic.Value
	pingWorkers := 8
	acks := make([]chan struct{}, pingWorkers)
	for i := range acks {
		acks[i] = make(chan struct{}, 1)
	}

	// The deliver callback reads n; the write below happens-before every
	// Send (senders start after it), and the dispatcher observes the sends
	// through the lane mutex, so the read is ordered after the write.
	var n *netsim.Network
	n, err := netsim.NewNetwork(topo, model, func(dst int, payload any) {
		// Inside deliver, the message being delivered has been counted into
		// queued (the increment precedes its visibility to the dispatcher)
		// and its decrement only happens after this callback returns, so
		// QueueLen() >= 1 must hold. This probes the counter at the exact
		// instant the pre-fix ordering (increment after the lane unlock)
		// loses the race: a deliver outrunning its own send's increment
		// reads 0 here — the false-quiescence window, sampled on every
		// delivery instead of hoping a polling monitor lands inside it.
		if n.QueueLen() < 1 {
			underflow.Add(1)
		}
		delivered.Add(1)
		switch m := payload.(type) {
		case fabricMsg:
			pair := m.src*numPEs + dst
			if int64(m.n) != lastSeen[pair]+1 {
				if fifoViolations.Add(1) == 1 {
					firstViolation.Store(fmt.Sprintf("pair (%d,%d): delivered n=%d after n=%d", m.src, dst, m.n, lastSeen[pair]))
				}
			}
			lastSeen[pair] = int64(m.n)
		case pingMsg:
			acks[m.worker] <- struct{}{}
		}
	})
	if err != nil {
		return err
	}
	if j := NewJitter(profile, seed, topo); j != nil {
		n.SetJitter(j)
	}

	// Monitor: sample QueueLen as fast as possible, recording any negative
	// reading. Gosched keeps the loop preemptible without sleeping.
	var negative atomic.Int64
	monStop := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		for {
			select {
			case <-monStop:
				return
			default:
			}
			if q := n.QueueLen(); q < 0 {
				negative.Add(1)
			}
			runtime.Gosched()
		}
	}()

	// Run with at least 4 Ps even on a single-core machine: the counter
	// races under test need a sender OS thread suspended mid-Send while the
	// dispatcher thread keeps running, and with GOMAXPROCS=1 there is only
	// one running thread, so a preemption pauses the whole world and no
	// inconsistent intermediate state is ever concurrently observable.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}

	// Phase 1 (zero-latency control run only): ping. Each worker keeps
	// exactly one message in flight — send, wait for the deliver callback's
	// ack, repeat — so the queue hovers near empty. That is the regime where
	// the deliver-time QueueLen probe has teeth: a blast keeps tens of
	// messages queued and the surplus masks one missing increment, but at
	// one-in-flight a deliver that outruns its own send's increment reads a
	// bare 0. Against the pre-fix ordering, an OS preemption of a sender
	// thread between its lane unlock and its (too-late) queued increment
	// leaves a counter debt outstanding for a whole scheduling quantum, and
	// every delivery in that quantum trips the probe; the fixed ordering
	// never trips it. Detection is probabilistic per preemption, so the
	// phase is sized to see many scheduling quanta.
	var sent atomic.Int64
	if profile == ProfileNone {
		rounds := 120000
		if short {
			rounds = 40000
		}
		var pwg sync.WaitGroup
		for w := 0; w < pingWorkers; w++ {
			pwg.Add(1)
			go func(w int) {
				defer pwg.Done()
				src, dst := w, numPEs-1-w
				for i := 0; i < rounds; i++ {
					sent.Add(1)
					n.Send(src, dst, pingMsg{worker: w}, 1)
					<-acks[w]
				}
			}(w)
		}
		pwg.Wait()
	}

	// Phase 2: blast. Each goroutine owns a disjoint slice of (src, dst) pairs and
	// sends perPair messages per pair in order, interleaving pairs so lanes
	// stay concurrently hot. Pair ownership is what makes the FIFO check
	// sound: per-pair send order is defined by a single goroutine.
	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.NewStream(seed, uint64(w))
			// Owned pairs: srcs ≡ w (mod senders), random distinct dsts —
			// a duplicate pair would carry two independent sequence
			// counters and fake a FIFO violation.
			var pairs [][2]int
			seen := make(map[[2]int]bool)
			for src := w; src < numPEs; src += senders {
				for k := 0; k < 3; k++ {
					p := [2]int{src, r.Intn(numPEs)}
					if !seen[p] {
						seen[p] = true
						pairs = append(pairs, p)
					}
				}
			}
			next := make([]uint64, len(pairs))
			for i := 0; i < perPair*len(pairs); i++ {
				p := r.Intn(len(pairs))
				src, dst := pairs[p][0], pairs[p][1]
				sent.Add(1)
				n.Send(src, dst, fabricMsg{src: src, n: next[p]}, 1+r.Intn(4))
				next[p]++
			}
		}(w)
	}
	wg.Wait()
	n.Close()
	close(monStop)
	<-monDone

	if u := underflow.Load(); u > 0 {
		return fmt.Errorf("fabric: QueueLen() < 1 inside deliver %d times (a delivery outran its send's queued increment — false-quiescence window)", u)
	}
	if neg := negative.Load(); neg > 0 {
		return fmt.Errorf("fabric: QueueLen() observed negative %d times (queued counter raced the dispatcher)", neg)
	}
	if v := fifoViolations.Load(); v > 0 {
		return fmt.Errorf("fabric: %d per-pair FIFO violations, first: %s", v, firstViolation.Load())
	}
	if s, d := sent.Load(), delivered.Load(); s != d {
		return fmt.Errorf("fabric: sent %d != delivered %d after Close (message lost in the fabric)", s, d)
	}
	if q := n.QueueLen(); q != 0 {
		return fmt.Errorf("fabric: QueueLen() == %d after Close, want 0", q)
	}
	return nil
}
