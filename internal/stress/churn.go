package stress

// The churn workload: an edge-mutation stream over a dynamic graph,
// oracle-validated after every batch (ISSUE satellite: the epoch oracle
// harness). Each run drives two consumers off one deterministic mutation
// stream:
//
//   - A bare dynamic.Graph with a few tracked sources, repaired in place
//     after every batch and checked against a sequential Dijkstra recompute
//     of the post-batch snapshot — distances exactly, the parent tree by
//     tightness certificate (VerifyTree).
//
//   - An engine.NewDynamic instance fed the same batches through Mutate,
//     with the tracked sources queried each epoch: responses must carry the
//     current epoch, hit the repaired cache, and match the same oracle.
//
// A failing (seed, batch) pair replays through the normal -run mechanism:
// the spec's seed fully determines the graph, the sources, and the stream.

import (
	"context"
	"fmt"

	"acic/internal/dynamic"
	"acic/internal/engine"
	"acic/internal/seq"
	"acic/internal/xrand"
)

// churnStress executes one churn run: spec.Seed determines everything.
func churnStress(spec Spec, short bool) error {
	r := xrand.New(spec.Seed)
	g := buildGraph(spec.Graph, r, short)
	n := g.NumVertices()

	numSources, epochs := 3, 12
	if short {
		numSources, epochs = 2, 6
	}
	sources := make([]int, numSources)
	for i := range sources {
		sources[i] = r.Intn(n)
	}

	// The repaired-in-place replica.
	dg := dynamic.FromCSR(g)
	dists := make([][]float64, numSources)
	parents := make([][]int32, numSources)
	for i, src := range sources {
		dists[i], parents[i] = dg.SSSP(src)
	}

	// The engine consumer, over its own copy of the same initial graph.
	eng, err := engine.NewDynamic(dynamic.FromCSR(g), engine.Config{MaxInFlight: 2, CacheEntries: 16})
	if err != nil {
		return fmt.Errorf("churn: engine: %w", err)
	}
	defer eng.Close(context.Background())
	ctx := context.Background()
	for _, src := range sources {
		if _, err := eng.Query(ctx, src, engine.QueryOptions{}); err != nil {
			return fmt.Errorf("churn: warmup query source %d: %w", src, err)
		}
	}

	bg := dynamic.NewBatchGen(dg, r, 100)
	for epoch := 1; epoch <= epochs; epoch++ {
		batch := bg.Next(1 + r.Intn(8))
		d, err := dg.Apply(batch)
		if err != nil {
			return fmt.Errorf("churn: epoch %d: apply: %w (batch %v)", epoch, err, batch)
		}
		if dg.Epoch() != uint64(epoch) {
			return fmt.Errorf("churn: epoch %d: graph reports epoch %d", epoch, dg.Epoch())
		}
		snap := dg.Snapshot()

		// Oracle the repaired replica per source, per epoch.
		for i, src := range sources {
			dg.Repair(src, dists[i], parents[i], d)
			want := seq.Dijkstra(snap, src)
			if j := seq.FirstMismatch(want.Dist, dists[i]); j >= 0 {
				return fmt.Errorf("churn: epoch %d source %d: repaired dist[%d] = %g, want %g (batch %v)",
					epoch, src, j, dists[i][j], want.Dist[j], batch)
			}
			if err := dynamic.VerifyTree(dg, src, dists[i], parents[i]); err != nil {
				return fmt.Errorf("churn: epoch %d source %d: %w (batch %v)", epoch, src, err, batch)
			}
		}

		// Same batch through the engine; epochs must stay in lockstep and
		// the repaired vectors must serve as current-epoch cache hits.
		mr, err := eng.Mutate(batch)
		if err != nil {
			return fmt.Errorf("churn: epoch %d: engine mutate: %w (batch %v)", epoch, err, batch)
		}
		if mr.Epoch != uint64(epoch) {
			return fmt.Errorf("churn: epoch %d: engine at epoch %d after mutate", epoch, mr.Epoch)
		}
		if mr.Edges != dg.NumEdges() {
			return fmt.Errorf("churn: epoch %d: engine has %d edges, replica %d", epoch, mr.Edges, dg.NumEdges())
		}
		for i, src := range sources {
			res, err := eng.Query(ctx, src, engine.QueryOptions{})
			if err != nil {
				return fmt.Errorf("churn: epoch %d: query source %d: %w", epoch, src, err)
			}
			if res.Epoch != uint64(epoch) {
				return fmt.Errorf("churn: epoch %d: response for source %d carries epoch %d", epoch, src, res.Epoch)
			}
			if !res.CacheHit {
				return fmt.Errorf("churn: epoch %d: source %d missed the repaired cache", epoch, src)
			}
			if j := seq.FirstMismatch(dists[i], res.Dist); j >= 0 {
				return fmt.Errorf("churn: epoch %d source %d: engine dist[%d] = %g, want %g (batch %v)",
					epoch, src, j, res.Dist[j], dists[i][j], batch)
			}
		}
	}
	return nil
}
