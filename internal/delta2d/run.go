package delta2d

import (
	"fmt"
	"math"

	"acic/internal/deltastep"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"

	"acic/internal/graph"
)

// Run executes 2-D Δ-stepping on g from source over the simulated machine.
func Run(g *graph.Graph, source int, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("delta2d: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params := opts.Params
	if params.Delta == 0 {
		params.Delta = deltastep.HeuristicDelta(g)
	}
	if params.Delta <= 0 || math.IsNaN(params.Delta) {
		return nil, fmt.Errorf("delta2d: invalid delta %v", params.Delta)
	}
	if params.TramCapacity <= 0 {
		params.TramCapacity = tram.DefaultCapacity
	}
	pes := topo.TotalPEs()
	rows := params.Rows
	if rows <= 0 {
		rows, _ = SquarestGrid(pes)
	}
	if rows < 1 || pes%rows != 0 {
		return nil, fmt.Errorf("delta2d: %d PEs do not form a grid with %d rows", pes, rows)
	}
	cols := pes / rows

	tm, err := tram.New[wire](topo, params.TramMode, params.TramCapacity)
	if err != nil {
		return nil, err
	}
	sh := &sharedState{
		g:     g,
		rPart: partition.NewOneD(g.NumVertices(), rows),
		cPart: partition.NewOneD(g.NumVertices(), cols),
		rows:  rows,
		cols:  cols,
		tm:    tm,
	}

	// Distribute the adjacency matrix: edge (u → v) to PE
	// (rowOf(u), colOf(v)).
	stores := make([]map[int32][]halfEdge, pes)
	for i := range stores {
		stores[i] = make(map[int32][]halfEdge)
	}
	g.EachEdge(func(from, to int32, w float64) {
		pe := sh.peAt(sh.rPart.Owner(from), sh.cPart.Owner(to))
		stores[pe][from] = append(stores[pe][from], halfEdge{to: to, w: w})
	})

	rt, err := runtime.New(runtime.Config{
		Topo:    topo,
		Latency: opts.Latency,
		Combine: combineStatus,
		Jitter:  opts.Jitter,
	})
	if err != nil {
		return nil, err
	}
	states := make([]*peState, pes)
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		st := newPEState(sh, pe, params, params.Delta, stores[pe.Index()])
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	for i := 0; i < pes; i++ {
		rt.Inject(i, startMsg{source: int32(source)})
	}
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{
		Dist: make([]float64, g.NumVertices()),
		Stats: Stats{
			Elapsed:  elapsed,
			GridRows: rows,
			GridCols: cols,
		},
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
	}
	root := states[0]
	res.Stats.Supersteps = root.root.supersteps
	res.Stats.BucketsProcessed = root.root.bucketsProcessed
	res.Stats.SwitchedToBF = root.root.switched
	res.Stats.BFRounds = root.root.bfRounds
	for _, st := range states {
		for li, d := range st.dist {
			res.Dist[st.ownerLo+int32(li)] = d
		}
		res.Stats.Relaxations += st.relaxations
		res.Stats.Rejected += st.rejected
		res.Stats.FrontierMsgs += st.frontierMsgs
	}
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}
