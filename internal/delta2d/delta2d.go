// Package delta2d implements Δ-stepping over a true two-dimensional
// partitioning of the adjacency matrix — the layout of the RIKEN
// Graph500-SSSP code the paper compares against (§IV-A) and recommends as
// future work for ACIC itself (§V: "divides the adjacency matrix of the
// input graph in two dimensions across the available processors ...
// Communication only occurs within rows and within columns").
//
// Layout. The PE grid has R rows × C columns. Vertices are block-
// partitioned twice: into R row-blocks (as edge *sources*) and into C
// column-blocks (as edge *targets*). Edge (u → v) is stored on PE
// (rowOf(u), colOf(v)); vertex v's state — tentative distance and bucket —
// lives on its *owner* PE (rowOf(v), colOf(v)).
//
// A bucket phase then needs exactly two communication patterns:
//
//   - Frontier propagation along rows: when owner(v) releases v from the
//     current bucket, it announces (v, dist(v)) to the C PEs of row
//     rowOf(v), which are precisely the PEs holding v's out-edges.
//   - Relaxation delivery along columns: a PE (r, c) relaxing stored edge
//     (u → v) produces a candidate (v, nd) whose owner sits in the same
//     column c (because the edge's storage column is colOf(v)), so the
//     candidate travels down the column only.
//
// Both flows are aggregated through tramlib and synchronized with the same
// reduction-tree barriers as the 1-D baseline, including the RIKEN hybrid
// switch to Bellman-Ford once the settle rate passes its local maximum.
// Compared to `internal/deltastep` (1-D), hub vertices' edge lists spread
// across a whole row of PEs instead of loading one PE — the property the
// paper credits for the RIKEN code's RMAT advantage.
package delta2d

import (
	"time"

	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// Params are the 2-D Δ-stepping tunables.
type Params struct {
	// Delta is the bucket width; zero selects deltastep.HeuristicDelta.
	Delta float64
	// Hybrid enables the Bellman-Ford tail switch.
	Hybrid bool
	// Rows forces the grid's row count; zero picks the largest divisor of
	// the PE count not exceeding its square root (the squarest grid).
	Rows int
	// TramMode and TramCapacity configure aggregation.
	TramMode     tram.Mode
	TramCapacity int
	// MaxBuckets bounds the bucket array (zero: 1 << 16).
	MaxBuckets int
	// ComputeCost is the simulated per-unit compute charge (per frontier
	// entry received, candidate received, and edge relaxed).
	ComputeCost time.Duration
}

// DefaultParams mirrors the 1-D baseline's defaults.
func DefaultParams() Params {
	return Params{Hybrid: true, TramMode: tram.WP, TramCapacity: tram.DefaultCapacity}
}

// Options configure one run.
type Options struct {
	Topo    netsim.Topology
	Latency netsim.LatencyModel
	Params  Params
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
}

// Stats mirrors deltastep.Stats plus grid shape.
type Stats struct {
	Elapsed          time.Duration
	GridRows         int
	GridCols         int
	Relaxations      int64
	Rejected         int64
	Supersteps       int64
	BucketsProcessed int64
	SwitchedToBF     bool
	BFRounds         int64
	FrontierMsgs     int64 // row-broadcast frontier entries
	TramStats        tram.Stats
	Network          netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
}

// Result is the output of a run.
type Result struct {
	Dist  []float64
	Stats Stats
}

// SquarestGrid returns the (rows, cols) factorization of pes with rows the
// largest divisor not exceeding sqrt(pes).
func SquarestGrid(pes int) (rows, cols int) {
	rows = 1
	for r := 1; r*r <= pes; r++ {
		if pes%r == 0 {
			rows = r
		}
	}
	return rows, pes / rows
}

// wire is the single message payload type: frontier announcements travel
// along rows, relaxation candidates along columns. Dest is the intended
// grid PE: under process-granularity aggregation a batch reaches one PE of
// the destination process, which re-routes by Dest — necessary for
// frontier copies, where several PEs of one process may each expect their
// own copy of the same (Vertex, Dist) announcement.
type wire struct {
	Vertex int32
	Dest   int32
	Dist   float64
	Kind   wireKind
}

type wireKind uint8

const (
	wireFrontierLight wireKind = iota // relax light edges of Vertex
	wireFrontierHeavy                 // relax heavy edges of Vertex
	wireFrontierAll                   // relax all edges (BF mode)
	wireCandidate                     // apply Dist to Vertex at its owner
)

type (
	startMsg struct{ source int32 }
	batchMsg struct{ items []wire }
)

// Control plane: identical protocol to the 1-D baseline.
type command uint8

const (
	cmdDrainLight command = iota
	cmdWait
	cmdHeavy
	cmdAdvance
	cmdBellmanFord
	cmdTerminate
)

type ctrlMsg struct {
	cmd    command
	bucket int32
}

type status struct {
	sent, received int64
	minBucket      int32
	settled        int64
	changed        bool
}

func combineStatus(a, b any) any {
	av, bv := a.(*status), b.(*status)
	av.sent += bv.sent
	av.received += bv.received
	if bv.minBucket >= 0 && (av.minBucket < 0 || bv.minBucket < av.minBucket) {
		av.minBucket = bv.minBucket
	}
	av.settled += bv.settled
	av.changed = av.changed || bv.changed
	return av
}

// halfEdge is a stored out-edge half: target and weight.
type halfEdge struct {
	to int32
	w  float64
}

type sharedState struct {
	g     *graph.Graph
	rPart *partition.OneD // row blocks over edge sources
	cPart *partition.OneD // column blocks over edge targets
	rows  int
	cols  int
	tm    *tram.Manager[wire]
}

func (sh *sharedState) peAt(r, c int) int { return r*sh.cols + c }

func (sh *sharedState) owner(v int32) int {
	return sh.peAt(sh.rPart.Owner(v), sh.cPart.Owner(v))
}
