package delta2d

import (
	"math"

	"acic/internal/runtime"
)

// peState is the 2-D Δ-stepping handler on one grid PE. Every PE stores an
// adjacency-matrix block; only PEs whose row-block and column-block ranges
// intersect also own vertex state (the intersection is a contiguous vertex
// interval, possibly empty).
type peState struct {
	shared *sharedState
	params Params
	delta  float64

	row, col int

	// Stored edges: out-edges (u → v) with rowOf(u) == row, colOf(v) == col.
	edges map[int32][]halfEdge

	// Owned vertex state over [ownerLo, ownerHi).
	ownerLo, ownerHi int32
	dist             []float64

	buckets      [][]int32
	inBucket     []int32
	wasInR       []bool
	settled      []int32
	frontier     []int32 // BF-mode improved vertices
	inFront      []bool
	bfMode       bool
	current      int32
	epochSettled int64

	sent, received int64
	changed        bool

	relaxations  int64
	rejected     int64
	frontierMsgs int64

	root rootState
}

type rootState struct {
	supersteps        int64
	bucketsProcessed  int64
	bfRounds          int64
	switched          bool
	phase             phase
	epochSettledAccum int64
	prevSettled       int64
	rose              bool
	terminated        bool
}

type phase uint8

const (
	phaseLight phase = iota
	phaseLightDrain
	phaseHeavy
	phaseHeavyDrain
	phaseBF
)

var _ runtime.Handler = (*peState)(nil)

func newPEState(sh *sharedState, pe *runtime.PE, p Params, delta float64, edges map[int32][]halfEdge) *peState {
	row := pe.Index() / sh.cols
	col := pe.Index() % sh.cols
	rlo, rhi := sh.rPart.Range(row)
	clo, chi := sh.cPart.Range(col)
	lo, hi := rlo, rhi
	if clo > lo {
		lo = clo
	}
	if chi < hi {
		hi = chi
	}
	if hi < lo {
		hi = lo // empty ownership interval
	}
	n := int(hi - lo)
	st := &peState{
		shared:   sh,
		params:   p,
		delta:    delta,
		row:      row,
		col:      col,
		edges:    edges,
		ownerLo:  lo,
		ownerHi:  hi,
		dist:     make([]float64, n),
		buckets:  make([][]int32, 1),
		inBucket: make([]int32, n),
		wasInR:   make([]bool, n),
		inFront:  make([]bool, n),
	}
	for i := range st.dist {
		st.dist[i] = math.Inf(1)
		st.inBucket[i] = -1
	}
	return st
}

func (st *peState) owns(v int32) bool { return v >= st.ownerLo && v < st.ownerHi }

func (st *peState) maxBuckets() int {
	if st.params.MaxBuckets > 0 {
		return st.params.MaxBuckets
	}
	return 1 << 16
}

func (st *peState) bucketOf(d float64) int32 {
	b := int32(d / st.delta)
	if int(b) >= st.maxBuckets() {
		b = int32(st.maxBuckets() - 1)
	}
	if b < 0 {
		b = 0
	}
	return b
}

func (st *peState) place(v int32, d float64) {
	li := v - st.ownerLo
	b := st.bucketOf(d)
	for int(b) >= len(st.buckets) {
		st.buckets = append(st.buckets, nil)
	}
	st.buckets[b] = append(st.buckets[b], v)
	st.inBucket[li] = b
}

func (st *peState) localMinBucket() int32 {
	for b := int32(0); int(b) < len(st.buckets); b++ {
		for _, v := range st.buckets[b] {
			li := v - st.ownerLo
			if st.inBucket[li] == b && st.bucketOf(st.dist[li]) == b {
				return b
			}
		}
	}
	return -1
}

// Deliver implements runtime.Handler.
func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case startMsg:
		if st.owns(m.source) {
			st.dist[m.source-st.ownerLo] = 0
			st.place(m.source, 0)
		}
		st.contribute(pe, 0)
	}
}

// Idle implements runtime.Handler: bulk-synchronous, no background work.
func (st *peState) Idle(pe *runtime.PE) bool { return false }

// send routes one wire item through tramlib, stamping its grid target.
func (st *peState) send(pe *runtime.PE, dst int, w wire) {
	st.sent++
	w.Dest = int32(dst)
	if batch := st.shared.tm.Insert(pe.Index(), dst, w); batch != nil {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
}

// announce broadcasts a frontier entry along this vertex's grid row — the
// row-confined communication pattern of the 2-D layout.
func (st *peState) announce(pe *runtime.PE, v int32, d float64, kind wireKind) {
	r := st.shared.rPart.Owner(v)
	for c := 0; c < st.shared.cols; c++ {
		st.send(pe, st.shared.peAt(r, c), wire{Vertex: v, Dist: d, Kind: kind})
	}
	st.frontierMsgs += int64(st.shared.cols)
}

func (st *peState) receiveBatch(pe *runtime.PE, items []wire) {
	me := pe.Index()
	var forwards map[int][]wire
	for _, w := range items {
		// Every wire carries its intended grid PE; process-granularity
		// batches are demuxed here exactly like the SMP comm thread in the
		// 1-D algorithms.
		if dest := int(w.Dest); dest != me {
			if forwards == nil {
				forwards = make(map[int][]wire)
			}
			forwards[dest] = append(forwards[dest], w)
			continue
		}
		st.received++
		if st.params.ComputeCost > 0 {
			pe.Work(st.params.ComputeCost)
		}
		if w.Kind == wireCandidate {
			st.applyCandidate(w)
		} else {
			st.relaxStored(pe, w)
		}
	}
	for dst, group := range forwards {
		pe.Send(dst, batchMsg{items: group}, len(group))
	}
	st.shared.tm.Release(items) // batch unpacked: recycle its capacity
}

// applyCandidate applies a relaxation result at the vertex owner.
func (st *peState) applyCandidate(w wire) {
	li := w.Vertex - st.ownerLo
	if w.Dist >= st.dist[li] {
		st.rejected++
		return
	}
	st.dist[li] = w.Dist
	st.changed = true
	if st.bfMode {
		if !st.inFront[li] {
			st.inFront[li] = true
			st.frontier = append(st.frontier, w.Vertex)
		}
		return
	}
	st.place(w.Vertex, w.Dist)
}

// relaxStored relaxes this PE's stored edges of the announced vertex,
// producing column-confined candidates.
func (st *peState) relaxStored(pe *runtime.PE, w wire) {
	for _, he := range st.edges[w.Vertex] {
		switch w.Kind {
		case wireFrontierLight:
			if he.w > st.delta {
				continue
			}
		case wireFrontierHeavy:
			if he.w <= st.delta {
				continue
			}
		}
		st.relaxations++
		if st.params.ComputeCost > 0 {
			pe.Work(st.params.ComputeCost)
		}
		st.send(pe, st.shared.owner(he.to), wire{Vertex: he.to, Dist: w.Dist + he.w, Kind: wireCandidate})
	}
}

// drainLight releases owned current-bucket vertices as light frontier.
func (st *peState) drainLight(pe *runtime.PE) {
	b := st.current
	if int(b) >= len(st.buckets) {
		return
	}
	entries := st.buckets[b]
	st.buckets[b] = nil
	for _, v := range entries {
		li := v - st.ownerLo
		if st.inBucket[li] != b || st.bucketOf(st.dist[li]) != b {
			continue
		}
		st.inBucket[li] = -1
		if !st.wasInR[li] {
			st.wasInR[li] = true
			st.settled = append(st.settled, v)
			st.epochSettled++
		}
		st.announce(pe, v, st.dist[li], wireFrontierLight)
	}
}

func (st *peState) relaxHeavyPhase(pe *runtime.PE) {
	for _, v := range st.settled {
		li := v - st.ownerLo
		st.wasInR[li] = false
		st.announce(pe, v, st.dist[li], wireFrontierHeavy)
	}
	st.settled = st.settled[:0]
}

func (st *peState) enterBF() {
	st.bfMode = true
	for b := range st.buckets {
		for _, v := range st.buckets[b] {
			li := v - st.ownerLo
			if st.inBucket[li] == int32(b) && !st.inFront[li] {
				st.inFront[li] = true
				st.frontier = append(st.frontier, v)
				st.inBucket[li] = -1
			}
		}
		st.buckets[b] = nil
	}
}

func (st *peState) bfRound(pe *runtime.PE) {
	front := st.frontier
	st.frontier = nil
	for _, v := range front {
		li := v - st.ownerLo
		st.inFront[li] = false
		st.announce(pe, v, st.dist[li], wireFrontierAll)
	}
}

func (st *peState) contribute(pe *runtime.PE, epoch int64) {
	for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
		pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
	}
	s := &status{
		sent:      st.sent,
		received:  st.received,
		minBucket: -1,
		changed:   st.changed,
		settled:   st.epochSettled,
	}
	st.changed = false
	st.epochSettled = 0
	if !st.bfMode {
		s.minBucket = st.localMinBucket()
	}
	if st.bfMode && len(st.frontier) > 0 {
		s.changed = true
	}
	pe.Contribute(epoch, s)
}

// OnBroadcast executes the root's command.
func (st *peState) OnBroadcast(pe *runtime.PE, epoch int64, payload any) {
	ctrl := payload.(ctrlMsg)
	switch ctrl.cmd {
	case cmdTerminate:
		pe.Exit()
		return
	case cmdWait:
	case cmdDrainLight, cmdAdvance:
		st.current = ctrl.bucket
		st.drainLight(pe)
	case cmdHeavy:
		st.relaxHeavyPhase(pe)
	case cmdBellmanFord:
		if !st.bfMode {
			st.enterBF()
		}
		st.bfRound(pe)
	}
	st.contribute(pe, epoch+1)
}

// OnReduction drives the same phase state machine as the 1-D baseline.
func (st *peState) OnReduction(pe *runtime.PE, epoch int64, value any) {
	if st.root.terminated {
		return
	}
	s := value.(*status)
	st.root.supersteps++
	r := &st.root
	inFlight := s.sent != s.received

	var ctrl ctrlMsg
	switch r.phase {
	case phaseLight, phaseLightDrain:
		r.epochSettledAccum += s.settled
		if inFlight {
			ctrl = ctrlMsg{cmd: cmdWait}
			r.phase = phaseLightDrain
			break
		}
		if s.minBucket >= 0 && s.minBucket <= st.current {
			ctrl = ctrlMsg{cmd: cmdDrainLight, bucket: st.current}
			r.phase = phaseLight
			break
		}
		ctrl = ctrlMsg{cmd: cmdHeavy}
		r.phase = phaseHeavy
	case phaseHeavy, phaseHeavyDrain:
		if inFlight {
			ctrl = ctrlMsg{cmd: cmdWait}
			r.phase = phaseHeavyDrain
			break
		}
		r.bucketsProcessed++
		settledNow := r.epochSettledAccum
		r.epochSettledAccum = 0
		if settledNow > r.prevSettled {
			r.rose = true
		}
		useBF := st.params.Hybrid && r.rose && settledNow < r.prevSettled
		r.prevSettled = settledNow
		if s.minBucket < 0 {
			ctrl = ctrlMsg{cmd: cmdTerminate}
			r.terminated = true
			break
		}
		if useBF {
			r.switched = true
			r.bfRounds++
			ctrl = ctrlMsg{cmd: cmdBellmanFord}
			r.phase = phaseBF
			break
		}
		st.current = s.minBucket
		ctrl = ctrlMsg{cmd: cmdAdvance, bucket: s.minBucket}
		r.phase = phaseLight
	case phaseBF:
		if inFlight || s.changed {
			r.bfRounds++
			ctrl = ctrlMsg{cmd: cmdBellmanFord}
			break
		}
		ctrl = ctrlMsg{cmd: cmdTerminate}
		r.terminated = true
	}
	pe.Broadcast(epoch, ctrl)
}
