package delta2d

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/deltastep"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func mustRun(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, source, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("2-D Δ-stepping run did not terminate")
		return nil
	}
}

func runAndVerify(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	res := mustRun(t, g, source, opts)
	want := seq.Dijkstra(g, source)
	if !seq.Equal(res.Dist, want.Dist) {
		i := seq.FirstMismatch(res.Dist, want.Dist)
		t.Fatalf("mismatch at vertex %d: delta2d=%v dijkstra=%v", i, res.Dist[i], want.Dist[i])
	}
	return res
}

func TestSquarestGrid(t *testing.T) {
	cases := []struct{ pes, r, c int }{
		{4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {12, 3, 4}, {16, 4, 4}, {7, 1, 7}, {1, 1, 1},
	}
	for _, cse := range cases {
		r, c := SquarestGrid(cse.pes)
		if r != cse.r || c != cse.c {
			t.Errorf("SquarestGrid(%d) = (%d,%d), want (%d,%d)", cse.pes, r, c, cse.r, cse.c)
		}
	}
}

func TestDiamond(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{})
	if res.Stats.GridRows*res.Stats.GridCols != 4 {
		t.Errorf("grid = %dx%d", res.Stats.GridRows, res.Stats.GridCols)
	}
	if res.Stats.Relaxations == 0 || res.Stats.FrontierMsgs == 0 {
		t.Error("no work recorded")
	}
}

func TestFixtures(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":        gen.Path(120),
		"star":        gen.Star(120),
		"cycle":       gen.Cycle(70),
		"grid":        gen.Grid(9, 9, gen.Config{Seed: 1}),
		"complete":    gen.Complete(20, gen.Config{Seed: 2}),
		"singleton":   graph.MustBuild(1, nil),
		"unreachable": graph.MustBuild(6, []graph.Edge{{From: 0, To: 1, Weight: 1}}),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{Params: DefaultParams()})
		})
	}
}

func TestRandomAndRMAT(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"random": gen.Uniform(1500, 12000, gen.Config{Seed: 3}),
		"rmat":   gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 4}),
	} {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()})
		})
	}
}

func TestNonRectangularPECountFallsBackToRow(t *testing.T) {
	// 7 PEs → 1×7 grid (degenerate but valid).
	g := gen.Uniform(400, 3200, gen.Config{Seed: 5})
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(7)})
	if res.Stats.GridRows != 1 || res.Stats.GridCols != 7 {
		t.Errorf("grid = %dx%d, want 1x7", res.Stats.GridRows, res.Stats.GridCols)
	}
}

func TestExplicitRows(t *testing.T) {
	g := gen.Uniform(600, 4800, gen.Config{Seed: 6})
	p := DefaultParams()
	p.Rows = 4
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(8), Params: p})
	if res.Stats.GridRows != 4 || res.Stats.GridCols != 2 {
		t.Errorf("grid = %dx%d, want 4x2", res.Stats.GridRows, res.Stats.GridCols)
	}
	p.Rows = 3 // 8 % 3 != 0
	if _, err := Run(g, 0, Options{Topo: netsim.SingleNode(8), Params: p}); err == nil {
		t.Error("non-dividing row count accepted")
	}
}

func TestWithLatencyAndMultiNode(t *testing.T) {
	g := gen.Uniform(1000, 8000, gen.Config{Seed: 7})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, IntraNode: 3 * time.Microsecond, InterNode: 10 * time.Microsecond},
		Params:  DefaultParams(),
	}
	runAndVerify(t, g, 0, opts)
}

func TestAllTramModes(t *testing.T) {
	g := gen.Uniform(600, 4800, gen.Config{Seed: 8})
	for _, mode := range []string{"WW", "WP", "PW", "PP"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			p := DefaultParams()
			switch mode {
			case "WW":
				p.TramMode = 0
			case "WP":
				p.TramMode = 1
			case "PW":
				p.TramMode = 2
			case "PP":
				p.TramMode = 3
			}
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: p})
		})
	}
}

func TestHybridSwitchOnGrid(t *testing.T) {
	g := gen.Grid(30, 30, gen.Config{Seed: 9})
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: DefaultParams()})
	if !res.Stats.SwitchedToBF {
		t.Error("hybrid switch never fired on a high-diameter grid")
	}
}

func TestHubEdgesSpreadAcrossRow(t *testing.T) {
	// The defining 2-D property: a hub's out-edges distribute over a row
	// of PEs instead of one PE. Verify on the star graph: vertex 0's
	// edges land on all PEs of row rowOf(0).
	g := gen.Star(1000)
	res := runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4)})
	// With 2x2 grid and vertex 0 in row 0, both (0,0) and (0,1) hold
	// roughly half the 999 spokes; a 1-D layout would put all 999 on PE 0.
	// Observable consequence: relaxations succeeded and FrontierMsgs is
	// cols per announced vertex.
	if res.Stats.GridCols < 2 {
		t.Skip("degenerate grid")
	}
	if res.Stats.FrontierMsgs%int64(res.Stats.GridCols) != 0 {
		t.Errorf("frontier messages %d not a multiple of cols %d",
			res.Stats.FrontierMsgs, res.Stats.GridCols)
	}
}

func TestNonZeroSource(t *testing.T) {
	g := gen.Grid(11, 11, gen.Config{Seed: 10})
	runAndVerify(t, g, 60, Options{})
}

func TestValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Run(g, -1, Options{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(g, 0, Options{Topo: netsim.Topology{Nodes: 0, ProcsPerNode: 1, PEsPerProc: 1}}); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestMatchesOneDDeltaStepping(t *testing.T) {
	// Both partitionings must compute identical distances.
	g := gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 11})
	r2 := mustRun(t, g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()})
	r1, err := deltastep.Run(g, 0, deltastep.Options{Topo: netsim.SingleNode(8), Params: deltastep.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(r2.Dist, r1.Dist) {
		t.Error("2-D and 1-D Δ-stepping disagree")
	}
}

// Property: 2-D Δ-stepping matches Dijkstra over random graphs, grids and
// sources.
func TestQuickMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw, srcRaw, pesRaw uint8) bool {
		n := int(nRaw%120) + 2
		src := int(srcRaw) % n
		pes := int(pesRaw%8) + 1
		g := gen.Uniform(n, n*5, gen.Config{Seed: seed, MaxWeight: 60})
		res, err := Run(g, src, Options{Topo: netsim.SingleNode(pes), Params: DefaultParams()})
		if err != nil {
			return false
		}
		return seq.Equal(res.Dist, seq.Dijkstra(g, src).Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDelta2DUniform(b *testing.B) {
	g := gen.Uniform(1<<12, 16<<12, gen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 0, Options{Topo: netsim.SingleNode(8), Params: DefaultParams()}); err != nil {
			b.Fatal(err)
		}
	}
}
