package distctrl

import (
	"testing"
	"testing/quick"
	"time"

	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
	"acic/internal/tram"
)

func runAndVerify(t *testing.T, g *graph.Graph, source int, opts Options) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(g, source, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run failed: %v", o.err)
		}
		want := seq.Dijkstra(g, source)
		if !seq.Equal(o.res.Dist, want.Dist) {
			i := seq.FirstMismatch(o.res.Dist, want.Dist)
			t.Fatalf("mismatch at vertex %d: distctrl=%v dijkstra=%v", i, o.res.Dist[i], want.Dist[i])
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("distributed control run did not terminate")
		return nil
	}
}

func TestDiamond(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 4},
		{From: 1, To: 2, Weight: 2}, {From: 1, To: 3, Weight: 6},
		{From: 2, To: 3, Weight: 3},
	})
	res := runAndVerify(t, g, 0, Options{})
	if res.Stats.UpdatesCreated == 0 {
		t.Error("no updates counted")
	}
	if res.Stats.UpdatesCreated != res.Stats.UpdatesProcessed {
		t.Errorf("created %d != processed %d", res.Stats.UpdatesCreated, res.Stats.UpdatesProcessed)
	}
}

func TestFixturesAndGraphTypes(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":        gen.Path(150),
		"star":        gen.Star(150),
		"grid":        gen.Grid(10, 10, gen.Config{Seed: 1}),
		"uniform":     gen.Uniform(1200, 9600, gen.Config{Seed: 2}),
		"rmat":        gen.RMAT(10, 8, gen.DefaultRMAT(), gen.Config{Seed: 3}),
		"unreachable": graph.MustBuild(6, []graph.Edge{{From: 0, To: 1, Weight: 1}}),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(6), Params: DefaultParams()})
		})
	}
}

func TestWithLatency(t *testing.T) {
	g := gen.Uniform(800, 6400, gen.Config{Seed: 4})
	opts := Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Latency: netsim.LatencyModel{IntraProcess: time.Microsecond, IntraNode: 3 * time.Microsecond, InterNode: 8 * time.Microsecond},
		Params:  DefaultParams(),
	}
	runAndVerify(t, g, 0, opts)
}

func TestTinyBuffersForceIdleFlush(t *testing.T) {
	// Capacity 1 sends every update immediately; the tail then exercises
	// the idle-triggered flush path.
	g := gen.Path(60)
	p := DefaultParams()
	p.TramCapacity = 1
	runAndVerify(t, g, 0, Options{Params: p})
}

func TestLargeBuffersStillDrain(t *testing.T) {
	// Buffers far larger than the workload can only drain via idle
	// flushes; termination proves they do.
	g := gen.Grid(8, 8, gen.Config{Seed: 5})
	p := DefaultParams()
	p.TramCapacity = 1 << 16
	runAndVerify(t, g, 0, Options{Params: p})
}

func TestModes(t *testing.T) {
	g := gen.Uniform(500, 4000, gen.Config{Seed: 6})
	for _, mode := range []tram.Mode{tram.WW, tram.WP, tram.PW, tram.PP} {
		p := DefaultParams()
		p.TramMode = mode
		runAndVerify(t, g, 0, Options{Topo: netsim.SingleNode(4), Params: p})
	}
}

func TestValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Run(g, 99, Options{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestQuickMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw, srcRaw, pesRaw uint8) bool {
		n := int(nRaw%120) + 2
		src := int(srcRaw) % n
		pes := int(pesRaw%5) + 1
		g := gen.Uniform(n, n*5, gen.Config{Seed: seed, MaxWeight: 60})
		res, err := Run(g, src, Options{Topo: netsim.SingleNode(pes), Params: DefaultParams()})
		if err != nil {
			return false
		}
		return seq.Equal(res.Dist, seq.Dijkstra(g, src).Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
