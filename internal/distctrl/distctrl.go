// Package distctrl implements the distributed-control SSSP baseline of
// Zalewski et al. (§I of the paper): a fully asynchronous label-correcting
// algorithm with *no* global view. Updates (vertex, distance) flow freely
// between PEs; each PE keeps a local min-priority queue and processes its
// best-known update when idle; the algorithm terminates when no messages
// remain anywhere, detected by the runtime-level quiescence detector.
//
// Relative to ACIC this strips out exactly the introspection machinery —
// histograms, thresholds, tram_hold, pq_hold and the reduction/broadcast
// cycle — so the pair forms the ablation the paper argues from: distributed
// control "has no global view of the distance value distribution of
// updates", and therefore propagates sub-optimal updates that ACIC would
// have held back.
//
// Aggregation note: with no broadcast cycle there is no periodic flush, so
// buffered updates could strand in the tail. Here a PE flushes its tramlib
// buffers when it runs out of local work (an idle-triggered flush), the
// natural asynchronous analogue.
package distctrl

import (
	"fmt"
	"math"
	"time"

	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/partition"
	"acic/internal/pq"
	"acic/internal/runtime"
	"acic/internal/simclock"
	"acic/internal/tram"
)

// update is one edge relaxation in flight.
type update struct {
	Vertex int32
	Dist   float64
}

type (
	seedMsg  struct{ source int32 }
	batchMsg struct{ items []update }
)

// Params configure distributed control.
type Params struct {
	// TramMode and TramCapacity configure aggregation; a capacity of 1
	// effectively disables batching (every update is its own message).
	TramMode     tram.Mode
	TramCapacity int
	// QuiescencePoll is the runtime detector's poll interval; zero means
	// 200µs.
	QuiescencePoll time.Duration
	// ComputeCost is the simulated per-unit compute time charged for each
	// update received and each edge relaxed; see core.Params.ComputeCost.
	ComputeCost time.Duration
}

// DefaultParams matches the aggregation configuration of the ACIC runs so
// comparisons isolate the control machinery.
func DefaultParams() Params {
	return Params{TramMode: tram.WP, TramCapacity: tram.DefaultCapacity}
}

// Options configure one run.
type Options struct {
	Topo    netsim.Topology
	Latency netsim.LatencyModel
	Params  Params
	// Clock times the run for Stats.Elapsed; nil means the wall clock.
	Clock simclock.Clock
	// Jitter, when non-nil, perturbs every message's delivery delay (see
	// netsim.JitterFunc) — the schedule-stress harness's hook.
	Jitter netsim.JitterFunc
}

// Stats reports the run's counters.
type Stats struct {
	Elapsed          time.Duration
	UpdatesCreated   int64
	UpdatesProcessed int64
	UpdatesRejected  int64
	Relaxations      int64
	TramStats        tram.Stats
	Network          netsim.Stats
	// Audit is the runtime's post-run conservation ledger; the stress
	// harness requires Audit.Unaccounted() == 0 and Audit.NetQueue == 0.
	Audit runtime.Audit
}

// Result is the output of a run.
type Result struct {
	Dist  []float64
	Stats Stats
}

type sharedState struct {
	g    *graph.Graph
	part *partition.OneD
	tm   *tram.Manager[update]
}

type peState struct {
	runtime.NopControl
	shared *sharedState
	params Params

	base  int32
	dist  []float64
	queue *pq.BinaryHeap

	created, processed, rejected, relaxations int64
}

var _ runtime.Handler = (*peState)(nil)

func (st *peState) Deliver(pe *runtime.PE, msg any) {
	switch m := msg.(type) {
	case batchMsg:
		st.receiveBatch(pe, m.items)
	case seedMsg:
		st.created++
		st.dist[m.source-st.base] = 0
		st.relaxOutEdges(pe, m.source, 0)
		st.processed++
	case runtime.Quiescence:
		pe.Exit()
	}
}

func (st *peState) receiveBatch(pe *runtime.PE, items []update) {
	me := pe.Index()
	var forwards map[int][]update
	for _, u := range items {
		owner := st.shared.part.Owner(u.Vertex)
		if owner != me {
			if forwards == nil {
				forwards = make(map[int][]update)
			}
			forwards[owner] = append(forwards[owner], u)
			continue
		}
		if st.params.ComputeCost > 0 {
			pe.Work(st.params.ComputeCost)
		}
		li := u.Vertex - st.base
		if u.Dist < st.dist[li] {
			st.dist[li] = u.Dist
			st.queue.Push(pq.Item{Key: u.Dist, Value: int64(u.Vertex)})
		} else {
			st.rejected++
			st.processed++
		}
	}
	for owner, group := range forwards {
		pe.Send(owner, batchMsg{items: group}, len(group))
	}
	st.shared.tm.Release(items) // batch unpacked: recycle its capacity
}

// Idle drains local work best-first, then flushes stranded tram buffers.
// Only when both are exhausted does the PE block — the state the runtime's
// quiescence detector watches for.
func (st *peState) Idle(pe *runtime.PE) bool {
	if st.queue.Len() > 0 {
		it := st.queue.Pop()
		v := int32(it.Value)
		if st.dist[v-st.base] == it.Key {
			st.relaxOutEdges(pe, v, it.Key)
		}
		st.processed++
		return true
	}
	if st.shared.tm.PendingInSet(pe.Index()) > 0 {
		for _, batch := range st.shared.tm.FlushSet(pe.Index()) {
			pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
		}
		return true
	}
	return false
}

func (st *peState) relaxOutEdges(pe *runtime.PE, v int32, d float64) {
	ts, ws := st.shared.g.Neighbors(int(v))
	for i, w := range ts {
		st.created++
		dst := st.shared.part.Owner(w)
		if batch := st.shared.tm.Insert(pe.Index(), dst, update{Vertex: w, Dist: d + ws[i]}); batch != nil {
			pe.Send(batch.DestPE, batchMsg{items: batch.Items}, len(batch.Items))
		}
	}
	st.relaxations += int64(len(ts))
	if st.params.ComputeCost > 0 {
		pe.Work(time.Duration(len(ts)) * st.params.ComputeCost)
	}
}

// Run executes distributed control on g from source.
func Run(g *graph.Graph, source int, opts Options) (*Result, error) {
	topo := opts.Topo
	if topo == (netsim.Topology{}) {
		topo = netsim.SingleNode(4)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.NumVertices() {
		return nil, fmt.Errorf("distctrl: source %d out of range [0,%d)", source, g.NumVertices())
	}
	params := opts.Params
	if params.TramCapacity <= 0 {
		params.TramCapacity = tram.DefaultCapacity
	}
	poll := params.QuiescencePoll
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}

	tm, err := tram.New[update](topo, params.TramMode, params.TramCapacity)
	if err != nil {
		return nil, err
	}
	sh := &sharedState{
		g:    g,
		part: partition.NewOneD(g.NumVertices(), topo.TotalPEs()),
		tm:   tm,
	}
	rt, err := runtime.New(runtime.Config{
		Topo:           topo,
		Latency:        opts.Latency,
		QuiescencePoll: poll,
		Jitter:         opts.Jitter,
	})
	if err != nil {
		return nil, err
	}
	states := make([]*peState, topo.TotalPEs())
	rt.Start(func(pe *runtime.PE) runtime.Handler {
		lo, hi := sh.part.Range(pe.Index())
		st := &peState{shared: sh, params: params, base: lo, dist: make([]float64, hi-lo), queue: pq.NewBinaryHeap(64)}
		for i := range st.dist {
			st.dist[i] = math.Inf(1)
		}
		states[pe.Index()] = st
		return st
	})

	clk := simclock.Default(opts.Clock)
	start := clk.Now()
	rt.Inject(sh.part.Owner(int32(source)), seedMsg{source: int32(source)})
	rt.Wait()
	elapsed := clk.Since(start)

	res := &Result{Dist: make([]float64, g.NumVertices()), Stats: Stats{Elapsed: elapsed}}
	for peIdx, st := range states {
		lo, hi := sh.part.Range(peIdx)
		copy(res.Dist[lo:hi], st.dist)
		res.Stats.UpdatesCreated += st.created
		res.Stats.UpdatesProcessed += st.processed
		res.Stats.UpdatesRejected += st.rejected
		res.Stats.Relaxations += st.relaxations
	}
	res.Stats.TramStats = tm.Stats()
	res.Stats.Network = rt.NetworkStats()
	res.Stats.Audit = rt.Audit()
	return res, nil
}
