// Package acic's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§IV), one testing.B benchmark per figure. Each
// benchmark iteration executes the corresponding experiment end-to-end on
// the simulated machine at a reduced scale; cmd/sssp-bench runs the same
// experiments at full configured scale and prints their data tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7 -benchtime=3x
//
// The reported ns/op is the wall time of a whole experiment, not of a
// single SSSP run; per-figure data goes to the benchmark log (b.Log).
package acic_test

import (
	"testing"
	"time"

	"acic/internal/bench"
	"acic/internal/netsim"
)

// benchConfig is the scaled-down configuration the testing.B harness uses;
// it matches DefaultConfig in structure but shrinks the graphs so a full
// -bench=. sweep completes in minutes on a laptop.
func benchConfig() bench.Config {
	c := bench.DefaultConfig()
	c.Scale = 10
	c.EdgeFactor = 8
	c.Trials = 1
	c.Nodes = []int{1, 2}
	c.ComputeCost = time.Microsecond
	c.Latency = netsim.DefaultLatency()
	return c
}

// BenchmarkFig1HistogramSnapshot regenerates Fig. 1: the merged global
// update histogram mid-run on an RMAT graph with p_tram = 0.1.
func BenchmarkFig1HistogramSnapshot(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := c.Fig1Histogram()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("peak active=%d lowest bucket=%d t_tram=%d t_pq=%d",
				r.PeakActive, r.LowestNonEmpty, r.Snapshot.TTram, r.Snapshot.TPQ)
		}
	}
}

// BenchmarkFig3ReductionOverhead regenerates Fig. 3: work-method loss per
// concurrent reduction across parallelism levels.
func BenchmarkFig3ReductionOverhead(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.Fig3ReductionOverhead([]int{2, 4, 8}, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("PEs=%d loss/reduction=%.5f%%", p.PEs, p.LossPerReductionPct)
			}
		}
	}
}

// BenchmarkFig4TramPercentile regenerates Fig. 4: runtime vs p_tram on the
// one-node random graph (paper optimum: 0.999).
func BenchmarkFig4TramPercentile(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.Fig4TramPercentile(bench.QuickPercentiles())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("p_tram=%.3f runtime=%.4fs", p.Value, p.Runtime.Mean())
			}
		}
	}
}

// BenchmarkFig5PQPercentile regenerates Fig. 5: runtime vs p_pq (paper
// optimum: 0.05).
func BenchmarkFig5PQPercentile(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.Fig5PQPercentile(bench.QuickPercentiles())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("p_pq=%.3f runtime=%.4fs", p.Value, p.Runtime.Mean())
			}
		}
	}
}

// BenchmarkFig6BufferSize regenerates Fig. 6: runtime vs tramlib buffer
// capacity across node counts.
func BenchmarkFig6BufferSize(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.Fig6BufferSize()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("nodes=%d capacity=%d runtime=%.4fs", p.Nodes, p.Capacity, p.Runtime.Mean())
			}
		}
	}
}

// compareOnce memoizes the Figs. 7-9 comparison runs within one bench
// process so the three figure benchmarks don't redo identical work per
// figure when run together.
func runCompare(b *testing.B, c bench.Config) []bench.ComparePoint {
	b.Helper()
	points, err := c.CompareACICDelta()
	if err != nil {
		b.Fatal(err)
	}
	return points
}

// BenchmarkFig7ExecutionTime regenerates Fig. 7: ACIC vs hybrid Δ-stepping
// wall time on random and RMAT graphs across node counts.
func BenchmarkFig7ExecutionTime(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points := runCompare(b, c)
		if i == 0 {
			for _, p := range points {
				b.Logf("%s nodes=%d acic=%.4fs delta=%.4fs", p.Kind, p.Nodes, p.ACICTime.Mean(), p.DeltaTime.Mean())
			}
		}
	}
}

// BenchmarkFig8TEPS regenerates Fig. 8: traversed edges per second for the
// same comparison.
func BenchmarkFig8TEPS(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points := runCompare(b, c)
		if i == 0 {
			for _, p := range points {
				b.Logf("%s nodes=%d acic=%.3g delta=%.3g TEPS", p.Kind, p.Nodes, p.ACICTEPS.Mean(), p.DeltaTEPS.Mean())
			}
		}
	}
}

// BenchmarkFig9UpdateCounts regenerates Fig. 9: updates (edge relaxations)
// created by each algorithm.
func BenchmarkFig9UpdateCounts(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points := runCompare(b, c)
		if i == 0 {
			for _, p := range points {
				b.Logf("%s nodes=%d acic=%.0f delta=%.0f updates", p.Kind, p.Nodes, p.ACICUpdates.Mean(), p.DeltaUpdates.Mean())
			}
		}
	}
}

// BenchmarkTramAggregationModes regenerates the §IV-E prose finding that WP
// aggregation is the best of {PP, WP, WW, PW} for SSSP.
func BenchmarkTramAggregationModes(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.AggregationModes(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("mode=%s runtime=%.4fs", p.Mode, p.Runtime.Mean())
			}
		}
	}
}

// BenchmarkAblationDistributedControlAndKLA contrasts ACIC with the two
// asynchronous designs the paper positions itself against (§I):
// distributed control (no global view) and KLA (depth-bounded supersteps).
func BenchmarkAblationDistributedControlAndKLA(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.Ablations(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s/%s runtime=%.4fs updates=%.0f", p.Kind, p.Algo, p.Runtime.Mean(), p.Updates.Mean())
			}
		}
	}
}

// BenchmarkAblationOverDecomposition measures the §V over-decomposition
// extension: chunked round-robin partitioning vs the paper's 1-D blocks.
func BenchmarkAblationOverDecomposition(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.OverDecomposition(1, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s chunks/PE=%d runtime=%.4fs", p.Kind, p.Factor, p.Runtime.Mean())
			}
		}
	}
}

// BenchmarkAblationThresholdPolicy measures the §V smooth threshold
// function against the paper's two-tier rule (Algorithm 1).
func BenchmarkAblationThresholdPolicy(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.ThresholdPolicies(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s/%s runtime=%.4fs updates=%.0f", p.Kind, p.Policy, p.Runtime.Mean(), p.Updates.Mean())
			}
		}
	}
}

// BenchmarkAblationDeltaChoice measures the Δ parallelism-vs-waste dial the
// paper's §I describes, via the baseline's two Δ heuristics.
func BenchmarkAblationDeltaChoice(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.DeltaPolicies(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s Δ=%.1f runtime=%.4fs relaxations=%.0f", p.Label, p.Delta, p.Runtime.Mean(), p.Updates.Mean())
			}
		}
	}
}

// BenchmarkAblationPartitionLayouts contrasts Δ-stepping under
// vertex-balanced 1-D, edge-balanced 1-D and true 2-D grid partitioning —
// the load-balance mechanism behind the paper's §IV-F analysis.
func BenchmarkAblationPartitionLayouts(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.PartitionLayouts(2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s/%s runtime=%.4fs relaxations=%.0f", p.Kind, p.Layout, p.Runtime.Mean(), p.Updates.Mean())
			}
		}
	}
}

// BenchmarkRoadGraph runs the §V future-work experiment: high-diameter
// road-style grid, asynchronous vs synchronous.
func BenchmarkRoadGraph(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := c.RoadGraph(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%s runtime=%.4fs syncs=%.0f", p.Algo, p.Runtime.Mean(), p.Syncs.Mean())
			}
		}
	}
}
