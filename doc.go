// Package acic is a from-scratch Go reproduction of "An Adaptive
// Asynchronous Approach for the Single-Source Shortest Paths Problem"
// (Rao, Chandrasekar, Kale; SC 2024).
//
// The module's root package holds only the figure-regeneration benchmarks
// (bench_test.go); the system lives under internal/:
//
//   - internal/core — the ACIC algorithm (§II-§III) with the paper's §V
//     future-work extensions (over-decomposition, smooth thresholds).
//   - internal/runtime, internal/netsim, internal/tram — the Charm++-style
//     message-driven substrate, the simulated cluster, and the tramlib
//     aggregation library.
//   - internal/deltastep, internal/delta2d, internal/distctrl,
//     internal/kla, internal/seq — the comparators and oracles.
//   - internal/bench — one experiment per figure of the paper's evaluation.
//
// Entry points for users are the binaries under cmd/ and the runnable
// programs under examples/. See README.md for a guided tour, DESIGN.md for
// the system inventory and substitution rationale, and EXPERIMENTS.md for
// the paper-vs-measured record.
package acic
