// Tuning example: explore ACIC's parameter space (§III, §IV-E).
//
//	go run ./examples/tuning
//
// Sweeps the two percentile parameters and the tramlib buffer size on a
// random low-diameter graph and prints a compact report, reproducing in
// miniature the methodology behind Figs. 4-6. The paper's conclusions —
// p_tram high (send eagerly), p_pq low (queue reluctantly), buffer size
// trading latency against batching — can be read off the output.
package main

import (
	"fmt"
	"log"
	"time"

	"acic/internal/core"
	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/tram"
)

func main() {
	g := gen.Uniform(1<<12, 16<<12, gen.Config{Seed: 11})
	topo := netsim.SingleNode(4)
	latency := netsim.DefaultLatency()

	run := func(p core.Params) (time.Duration, int64) {
		res, err := core.Run(g, 0, core.Options{Topo: topo, Latency: latency, Params: p})
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats.Elapsed, res.Stats.UpdatesCreated
	}

	fmt.Println("p_tram sweep (p_pq fixed at 0.05):")
	for _, v := range []float64{0.05, 0.25, 0.5, 0.75, 0.999} {
		p := core.DefaultParams()
		p.PTram = v
		el, upd := run(p)
		fmt.Printf("  p_tram=%.3f  runtime=%-12v updates=%d\n", v, el, upd)
	}

	fmt.Println("p_pq sweep (p_tram fixed at 0.999):")
	for _, v := range []float64{0.05, 0.25, 0.5, 0.75, 0.999} {
		p := core.DefaultParams()
		p.PPQ = v
		el, upd := run(p)
		fmt.Printf("  p_pq=%.3f    runtime=%-12v updates=%d\n", v, el, upd)
	}

	fmt.Println("tramlib buffer size sweep:")
	for _, capacity := range tram.SupportedCapacities {
		p := core.DefaultParams()
		p.TramCapacity = capacity
		el, upd := run(p)
		fmt.Printf("  capacity=%-5d runtime=%-12v updates=%d\n", capacity, el, upd)
	}

	fmt.Println("aggregation modes (paper: WP best):")
	for _, mode := range []tram.Mode{tram.PP, tram.WP, tram.WW, tram.PW} {
		p := core.DefaultParams()
		p.TramMode = mode
		el, upd := run(p)
		fmt.Printf("  mode=%s        runtime=%-12v updates=%d\n", mode, el, upd)
	}
}
