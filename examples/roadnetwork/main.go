// Road-network example: the high-diameter workload of the paper's
// future-work section (§V).
//
//	go run ./examples/roadnetwork
//
// High-diameter graphs such as road networks force synchronous SSSP
// algorithms through one global barrier per distance band, while an
// asynchronous algorithm chases the frontier without stopping. This
// example runs ACIC and both Δ-stepping variants (pure and RIKEN-hybrid)
// on a grid "road map" and reports runtimes alongside the number of global
// synchronizations each synchronous run needed.
package main

import (
	"fmt"
	"log"

	"acic/internal/core"
	"acic/internal/deltastep"
	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func main() {
	const side = 64 // 64×64 grid: diameter ≈ 128 hops
	g := gen.Grid(side, side, gen.Config{Seed: 3, MaxWeight: 8})
	fmt.Printf("road grid: %d intersections, %d road segments, diameter ≈ %d hops\n",
		g.NumVertices(), g.NumEdges(), 2*side)

	topo := netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2}
	latency := netsim.DefaultLatency()
	source := 0 // north-west corner

	oracle := seq.Dijkstra(g, source)

	acicRes, err := core.Run(g, source, core.Options{Topo: topo, Latency: latency, Params: core.DefaultParams()})
	if err != nil {
		log.Fatal(err)
	}
	if !seq.Equal(acicRes.Dist, oracle.Dist) {
		log.Fatal("ACIC result wrong")
	}
	fmt.Printf("acic         : %10v  (0 global syncs, %d reduction cycles overlapped with work)\n",
		acicRes.Stats.Elapsed, acicRes.Stats.Reductions)

	pure := deltastep.DefaultParams()
	pure.Hybrid = false
	pureRes, err := deltastep.Run(g, source, deltastep.Options{Topo: topo, Latency: latency, Params: pure})
	if err != nil {
		log.Fatal(err)
	}
	if !seq.Equal(pureRes.Dist, oracle.Dist) {
		log.Fatal("Δ-stepping result wrong")
	}
	fmt.Printf("delta (pure) : %10v  (%d global syncs over %d buckets)\n",
		pureRes.Stats.Elapsed, pureRes.Stats.Supersteps, pureRes.Stats.BucketsProcessed)

	hybridRes, err := deltastep.Run(g, source, deltastep.Options{Topo: topo, Latency: latency, Params: deltastep.DefaultParams()})
	if err != nil {
		log.Fatal(err)
	}
	if !seq.Equal(hybridRes.Dist, oracle.Dist) {
		log.Fatal("hybrid Δ-stepping result wrong")
	}
	sw := "did not switch"
	if hybridRes.Stats.SwitchedToBF {
		sw = fmt.Sprintf("switched to Bellman-Ford, %d BF rounds", hybridRes.Stats.BFRounds)
	}
	fmt.Printf("delta (RIKEN): %10v  (%d global syncs; %s)\n",
		hybridRes.Stats.Elapsed, hybridRes.Stats.Supersteps, sw)

	fmt.Println()
	fmt.Println("the farther corner-to-corner routes:")
	for _, v := range []int{side - 1, side * (side - 1), side*side - 1} {
		fmt.Printf("  corner %4d: travel cost %g\n", v, acicRes.Dist[v])
	}
}
