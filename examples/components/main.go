// Connected-components example: the paper's future-work machinery transfer
// (§V) in action.
//
//	go run ./examples/components
//
// The paper closes by proposing that ACIC's concepts — asynchronous
// reductions overlapped with computation, counter-based quiescence — carry
// to other graph problems, naming connected components on random graphs as
// the first candidate. internal/cc implements exactly that: asynchronous
// min-label propagation whose termination is detected by ACIC's
// equal-counters-twice rule riding on a concurrent reduction cycle. This
// example runs it over an Erdős–Rényi graph near the percolation threshold,
// where the component-size distribution is most interesting.
package main

import (
	"fmt"
	"log"
	"sort"

	"acic/internal/cc"
	"acic/internal/gen"
	"acic/internal/netsim"
)

func main() {
	const n = 20000
	// Mean degree ~1.1: just above the giant-component threshold.
	g := gen.ErdosRenyi(n, 11000, gen.Config{Seed: 42})
	fmt.Printf("Erdős–Rényi graph: %d vertices, %d edges (mean degree %.2f)\n",
		g.NumVertices(), g.NumEdges(), 2*float64(g.NumEdges())/float64(n))

	res, err := cc.Run(g, cc.Options{
		Topo:    netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		Latency: netsim.DefaultLatency(),
		Params:  cc.DefaultParams(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against union-find.
	want := cc.SequentialCC(g)
	for v := range want {
		if res.Labels[v] != want[v] {
			log.Fatalf("label mismatch at vertex %d", v)
		}
	}

	sizes := map[int32]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	// Component size histogram (powers of two).
	hist := map[int]int{}
	for _, s := range sizes {
		b := 0
		for v := s; v > 1; v >>= 1 {
			b++
		}
		hist[b]++
	}
	fmt.Printf("components: %d total, largest %d vertices (%.1f%% of graph)\n",
		res.Stats.Components, largest, 100*float64(largest)/float64(n))
	bs := make([]int, 0, len(hist))
	for b := range hist {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	for _, b := range bs {
		fmt.Printf("  size [%6d,%6d): %6d components\n", 1<<b, 1<<(b+1), hist[b])
	}
	fmt.Printf("run: %v, %d label updates (%d rejected), %d reduction cycles\n",
		res.Stats.Elapsed, res.Stats.UpdatesCreated, res.Stats.Rejected, res.Stats.Reductions)
	fmt.Printf("quiescence: created %d == processed %d ✓ (ACIC's termination rule, transferred)\n",
		res.Stats.UpdatesCreated, res.Stats.UpdatesProcessed)
}
