// Quickstart: run ACIC on a small hand-built road map and print every
// shortest distance.
//
//	go run ./examples/quickstart
//
// The example builds a nine-vertex weighted digraph, runs ACIC on a
// simulated single node with four PEs, and cross-checks the result against
// sequential Dijkstra.
package main

import (
	"fmt"
	"log"

	"acic/internal/core"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func main() {
	// A small city map: vertices are intersections, weights are minutes.
	edges := []graph.Edge{
		{From: 0, To: 1, Weight: 4}, {From: 0, To: 7, Weight: 8},
		{From: 1, To: 2, Weight: 8}, {From: 1, To: 7, Weight: 11},
		{From: 2, To: 3, Weight: 7}, {From: 2, To: 8, Weight: 2},
		{From: 2, To: 5, Weight: 4}, {From: 3, To: 4, Weight: 9},
		{From: 3, To: 5, Weight: 14}, {From: 4, To: 5, Weight: 10},
		{From: 5, To: 6, Weight: 2}, {From: 6, To: 7, Weight: 1},
		{From: 6, To: 8, Weight: 6}, {From: 7, To: 8, Weight: 7},
		{From: 7, To: 0, Weight: 8}, {From: 8, To: 2, Weight: 2},
	}
	g, err := graph.Build(9, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Run ACIC with the paper's tuned parameters (p_tram=0.999, p_pq=0.05)
	// on one simulated node with four PEs.
	res, err := core.Run(g, 0, core.Options{
		Topo:    netsim.SingleNode(4),
		Latency: netsim.DefaultLatency(),
		Params:  core.DefaultParams(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest distances from intersection 0:")
	for v, d := range res.Dist {
		fmt.Printf("  to %d: %g\n", v, d)
	}
	fmt.Printf("stats: %d updates created, %d rejected, %d reductions, %v elapsed\n",
		res.Stats.UpdatesCreated, res.Stats.UpdatesRejected,
		res.Stats.Reductions, res.Stats.Elapsed)

	// Sanity: ACIC is label-correcting but converges to Dijkstra's answer.
	if want := seq.Dijkstra(g, 0); !seq.Equal(res.Dist, want.Dist) {
		log.Fatal("quickstart: ACIC disagreed with Dijkstra")
	}
	fmt.Println("verified against Dijkstra ✓")
}
