// Compare example: every algorithm in the repository on the same graphs.
//
//	go run ./examples/compare
//
// Runs ACIC, hybrid Δ-stepping, distributed control, KLA and the two
// sequential oracles on a random and an RMAT graph, cross-checks all
// distance vectors, and prints a side-by-side table — the quickest way to
// see the paper's headline contrast (ACIC ahead on random graphs, behind
// Δ-stepping on RMAT) plus where the related work falls.
package main

import (
	"fmt"
	"log"
	"time"

	"acic/internal/core"
	"acic/internal/deltastep"
	"acic/internal/distctrl"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/kla"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func main() {
	const scale = 12
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"random", gen.Uniform(1<<scale, 16<<scale, gen.Config{Seed: 5})},
		{"rmat", gen.RMAT(scale, 16, gen.DefaultRMAT(), gen.Config{Seed: 5})},
	}
	topo := netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2}
	latency := netsim.DefaultLatency()

	for _, item := range graphs {
		g := item.g
		fmt.Printf("== %s graph: |V|=%d |E|=%d ==\n", item.name, g.NumVertices(), g.NumEdges())
		oracle := seq.Dijkstra(g, 0)

		check := func(name string, dist []float64) {
			if !seq.Equal(dist, oracle.Dist) {
				log.Fatalf("%s: wrong distances on %s graph", name, item.name)
			}
		}
		row := func(name string, elapsed time.Duration, relaxations int64) {
			fmt.Printf("  %-12s %12v  %10d relaxations\n", name, elapsed, relaxations)
		}

		start := time.Now()
		d := seq.Dijkstra(g, 0)
		row("dijkstra", time.Since(start), d.Relaxations)

		start = time.Now()
		bf := seq.BellmanFord(g, 0)
		row("bellman-ford", time.Since(start), bf.Relaxations)

		ar, err := core.Run(g, 0, core.Options{Topo: topo, Latency: latency, Params: core.DefaultParams()})
		if err != nil {
			log.Fatal(err)
		}
		check("acic", ar.Dist)
		row("acic", ar.Stats.Elapsed, ar.Stats.Relaxations)

		dr, err := deltastep.Run(g, 0, deltastep.Options{Topo: topo, Latency: latency, Params: deltastep.DefaultParams()})
		if err != nil {
			log.Fatal(err)
		}
		check("delta", dr.Dist)
		row("delta-hybrid", dr.Stats.Elapsed, dr.Stats.Relaxations)

		cr, err := distctrl.Run(g, 0, distctrl.Options{Topo: topo, Latency: latency, Params: distctrl.DefaultParams()})
		if err != nil {
			log.Fatal(err)
		}
		check("distctrl", cr.Dist)
		row("distctrl", cr.Stats.Elapsed, cr.Stats.Relaxations)

		kr, err := kla.Run(g, 0, kla.Options{Topo: topo, Latency: latency, Params: kla.DefaultParams()})
		if err != nil {
			log.Fatal(err)
		}
		check("kla", kr.Dist)
		row("kla", kr.Stats.Elapsed, kr.Stats.Relaxations)

		fmt.Printf("  ACIC vs delta wall time: %.2fx (>1 means ACIC faster)\n\n",
			dr.Stats.Elapsed.Seconds()/ar.Stats.Elapsed.Seconds())
	}
}
