// Social-network example: degrees of influence over a scale-free graph.
//
//	go run ./examples/socialnetwork
//
// The paper's introduction motivates SSSP with social networks, whose
// power-law degree distributions are exactly what the RMAT generator
// models (§IV-B). This example builds an RMAT "follower" graph where an
// edge u→v weighted w means "u reaches v with interaction cost w", then
// uses ACIC to compute the cheapest influence path from one seed user to
// everyone — and shows the load-imbalance problem the paper attributes to
// 1-D partitioning of scale-free graphs.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"acic/internal/core"
	"acic/internal/gen"
	"acic/internal/netsim"
	"acic/internal/partition"
)

func main() {
	const scale = 12 // 4096 users
	g := gen.RMAT(scale, 16, gen.DefaultRMAT(), gen.Config{Seed: 7, MaxWeight: 10})
	stats := g.OutDegreeStats()
	fmt.Printf("follower graph: %d users, %d edges, degree mean=%.1f max=%d (power law)\n",
		g.NumVertices(), g.NumEdges(), stats.Mean, stats.Max)

	// Seed the influence search at the highest-degree user (the "hub").
	hub := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(v) > g.OutDegree(hub) {
			hub = v
		}
	}
	fmt.Printf("seeding from hub user %d (degree %d)\n", hub, g.OutDegree(hub))

	topo := netsim.Topology{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2}
	res, err := core.Run(g, hub, core.Options{
		Topo:    topo,
		Latency: netsim.DefaultLatency(),
		Params:  core.DefaultParams(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Histogram of "degrees of influence" (path cost bands).
	reached := 0
	bands := map[int]int{}
	for _, d := range res.Dist {
		if math.IsInf(d, 1) {
			continue
		}
		reached++
		bands[int(d)/10]++
	}
	fmt.Printf("reached %d/%d users; cost-band histogram:\n", reached, g.NumVertices())
	keys := make([]int, 0, len(bands))
	for k := range bands {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  cost [%3d,%3d): %5d users\n", k*10, (k+1)*10, bands[k])
	}

	// The paper's §IV-F diagnosis: vertex-balanced 1-D partitioning
	// concentrates hub edges on single PEs; balanced layouts (the RIKEN
	// code's 2-D, or this repository's edge-balanced blocks) spread them.
	oneD := partition.NewOneD(g.NumVertices(), topo.TotalPEs())
	balanced := partition.NewEdgeBalancedOneD(g, topo.TotalPEs())
	fmt.Printf("edge imbalance (max/mean): vertex-balanced 1-D %.2f vs edge-balanced %.2f — why ACIC loses on RMAT\n",
		oneD.EdgeImbalance(g), balanced.EdgeImbalance(g))
	fmt.Printf("run: %v, %d updates, %d wasted (rejected)\n",
		res.Stats.Elapsed, res.Stats.UpdatesCreated, res.Stats.UpdatesRejected)
}
