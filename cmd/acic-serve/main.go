// Command acic-serve is the resident SSSP query daemon: it loads (or
// generates) one graph, builds an internal/engine query engine over it, and
// serves single-source and point-to-point shortest-path queries over
// HTTP/JSON until SIGTERM/SIGINT, then drains gracefully.
//
// Examples:
//
//	acic-serve -addr :8080 -kind random -scale 14
//	acic-serve -input graph.csv -vertices 16384 -maxinflight 8
//
//	curl 'localhost:8080/sssp?source=0'
//	curl 'localhost:8080/path?source=0&target=42'
//	curl -X POST 'localhost:8080/mutate' -d '{"mutations":[{"op":"insert","from":0,"to":42,"weight":1.5}]}'
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/metrics'
//
// The daemon always serves a dynamic engine: POST /mutate applies a batch
// of edge mutations (insert, delete, set_weight), bumps the graph epoch,
// and incrementally repairs resident cached vectors (see internal/dynamic).
//
// Admission control sheds load with 429 + Retry-After once the in-flight
// and queued query bounds are both full; see internal/engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acic/internal/core"
	"acic/internal/dynamic"
	"acic/internal/engine"
	"acic/internal/gctune"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		kind       = flag.String("kind", "random", "generated graph kind: rmat | random | grid")
		scale      = flag.Int("scale", 12, "2^scale vertices for generated graphs")
		edgeFactor = flag.Int("edgefactor", 16, "edges = edgefactor * 2^scale")
		seed       = flag.Uint64("seed", 1, "random seed")
		input      = flag.String("input", "", "edge-list CSV to load instead of generating")
		vertices   = flag.Int("vertices", 0, "vertex count for -input graphs")
		nodes      = flag.Int("nodes", 1, "simulated cluster nodes")
		ppn        = flag.Int("ppn", 2, "processes per node")
		pepp       = flag.Int("pepp", 2, "PEs per process")
		ptram      = flag.Float64("ptram", 0.999, "ACIC p_tram percentile fraction")
		ppq        = flag.Float64("ppq", 0.05, "ACIC p_pq percentile fraction")

		cacheSize    = flag.Int("cache", 64, "LRU distance-vector cache entries")
		maxInFlight  = flag.Int("maxinflight", 4, "concurrently executing queries (sizes the Scratch pool)")
		maxQueue     = flag.Int("maxqueue", 0, "queries allowed to wait for a slot (0 = 2×maxinflight)")
		queueTimeout = flag.Duration("queuetimeout", time.Second, "max wait for a slot before shedding with 429")
		drainWait    = flag.Duration("drainwait", 30*time.Second, "max wait for in-flight queries on shutdown")

		gogc       = flag.Int("gogc", 0, "GC shaping: set the GC target percentage (like GOGC; 0 = leave default, negative = off)")
		gcMemLimit = flag.Int64("gcmemlimit", 0, "GC shaping: soft memory limit in MiB (like GOMEMLIMIT; 0 = leave default)")
		gcBallast  = flag.Int64("ballast", 0, "GC shaping: allocate a dead-heap ballast of this many MiB")
	)
	flag.Parse()
	gc := gctune.Apply(gctune.Config{GCPercent: *gogc, MemLimitMiB: *gcMemLimit, BallastMiB: *gcBallast})
	if gc.Active() {
		fmt.Println(gc)
	}

	g, err := loadGraph(*input, *vertices, *kind, *scale, *edgeFactor, *seed)
	if err != nil {
		fail(err)
	}
	params := core.DefaultParams()
	params.PTram = *ptram
	params.PPQ = *ppq
	eng, err := engine.NewDynamic(dynamic.FromCSR(g), engine.Config{
		Topo:         netsim.Topology{Nodes: *nodes, ProcsPerNode: *ppn, PEsPerProc: *pepp},
		Params:       params,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		CacheEntries: *cacheSize,
	})
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := serve(ctx, eng, g, *addr, *drainWait, os.Stdout, nil); err != nil {
		fail(err)
	}
}

// serve listens on addr and serves eng's HTTP API until ctx is cancelled,
// then drains the engine with a drainWait deadline. onReady, if non-nil,
// receives the bound address once the listener is up (the in-process tests
// use it; external launchers parse the readiness line instead).
func serve(ctx context.Context, eng *engine.Engine, g *graph.Graph, addr string, drainWait time.Duration, out io.Writer, onReady func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: eng.Handler()}
	h := eng.Health()
	// The readiness line is part of the interface: the CI smoke stage (and
	// any launcher) parses the bound address from it.
	fmt.Fprintf(out, "acic-serve: listening on %s (|V|=%d |E|=%d, %d PEs, %d in-flight / %d queued)\n",
		ln.Addr(), g.NumVertices(), g.NumEdges(), h.PEs, h.MaxInFlight, h.MaxQueue)
	if onReady != nil {
		onReady(ln.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "acic-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "acic-serve: http shutdown: %v\n", err)
	}
	if err := eng.Close(drainCtx); err != nil {
		return fmt.Errorf("engine drain: %w", err)
	}
	fmt.Fprintln(out, "acic-serve: drained cleanly")
	return nil
}

func loadGraph(input string, vertices int, kind string, scale, edgeFactor int, seed uint64) (*graph.Graph, error) {
	if input != "" {
		if vertices <= 0 {
			return nil, fmt.Errorf("-input requires -vertices")
		}
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadCSV(f, vertices)
	}
	cfg := gen.Config{Seed: seed}
	n := 1 << scale
	switch kind {
	case "rmat":
		return gen.RMAT(scale, edgeFactor, gen.DefaultRMAT(), cfg), nil
	case "random":
		return gen.Uniform(n, edgeFactor*n, cfg), nil
	case "grid":
		side := 1 << (scale / 2)
		return gen.Grid(side, side, cfg), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acic-serve:", err)
	os.Exit(1)
}
