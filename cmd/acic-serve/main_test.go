package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"acic/internal/core"
	"acic/internal/engine"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
)

func TestLoadGraphGeneratedKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "random", "grid"} {
		g, err := loadGraph("", 0, kind, 8, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty", kind)
		}
	}
	if _, err := loadGraph("", 0, "bogus", 8, 4, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := loadGraph("nosuch.csv", 0, "", 0, 0, 0); err == nil {
		t.Error("-input without -vertices accepted")
	}
}

// TestServeInProcess drives the serve loop without exec'ing a binary: it
// binds port 0, issues one query of each shape over real HTTP, then cancels
// the context (standing in for SIGTERM) and requires a clean drain. The
// exec'd TestDaemonSmoke proves the wiring end to end; this variant makes
// the same loop visible to the coverage profile.
func TestServeInProcess(t *testing.T) {
	g, err := loadGraph("", 0, "random", 8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engine.Config{
		Topo:        netsim.Topology{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 2},
		Params:      core.DefaultParams(),
		MaxInFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The listen-error path returns before the serve loop starts.
	if err := serve(context.Background(), eng, g, "127.0.0.1:bogus", time.Second, io.Discard, nil); err == nil {
		t.Fatal("serve accepted an unparseable address")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, eng, g, "127.0.0.1:0", 10*time.Second, &out, func(a net.Addr) { ready <- a })
	}()
	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case <-time.After(10 * time.Second):
		t.Fatal("serve never signalled readiness")
	}

	for _, q := range []struct {
		path string
		code int
	}{
		{"/healthz", 200},
		{"/sssp?source=3", 200},
		{"/sssp?source=3", 200}, // repeat rides the cache path
		{"/sssp?source=3&vertices=0,5,10", 200},
		{"/path?source=0&target=200", 200},
		{"/metrics", 200},
		{"/sssp?source=-1", 400},
	} {
		resp, err := http.Get(base + q.path)
		if err != nil {
			t.Fatalf("GET %s: %v", q.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != q.code {
			t.Errorf("GET %s: status %d, want %d", q.path, resp.StatusCode, q.code)
		}
	}

	// This in-process engine is static; the daemon proper always serves a
	// dynamic one (see main). /mutate must map that to 501, not a panic.
	resp, err := http.Post(base+"/mutate", "application/json",
		strings.NewReader(`{"mutations":[{"op":"insert","from":0,"to":1,"weight":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("mutate on static engine: status %d, want 501", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after cancellation", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain within 15s of cancellation")
	}
	s := out.String()
	if !strings.Contains(s, "listening on") || !strings.Contains(s, "draining") || !strings.Contains(s, "drained cleanly") {
		t.Errorf("serve output missing lifecycle lines: %q", s)
	}
}

// TestDaemonSmoke is the query-service smoke: build the real binary, start
// the daemon, issue concurrent single-source and point-to-point queries
// against it, assert a cache hit and a 429 under saturation, then verify
// graceful shutdown on SIGTERM. scripts/ci.sh runs it as its own stage.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke builds and execs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "acic-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building acic-serve: %v", err)
	}

	// Tight admission bounds make saturation reachable from a test: one
	// executing query, one queued, everything else shed.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-kind", "random", "-scale", "10", "-seed", "5",
		"-maxinflight", "1", "-maxqueue", "1", "-queuetimeout", "50ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// One goroutine owns stdout: it parses the readiness line, keeps
	// draining so the daemon never blocks on a full pipe, and only reaps
	// with Wait after EOF — Wait closes the pipe on child exit, so calling
	// it while the scanner still reads would race away the final lines.
	ready := make(chan string, 1)
	outAll := make(chan string, 1)
	exited := make(chan error, 1)
	go func() {
		var b strings.Builder
		sc := bufio.NewScanner(stdout)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			b.WriteString(line)
			b.WriteByte('\n')
			if i := strings.Index(line, "listening on "); !announced && i >= 0 {
				ready <- strings.Fields(line[i+len("listening on "):])[0]
				announced = true
			}
		}
		outAll <- b.String()
		exited <- cmd.Wait()
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never printed its readiness line")
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Liveness.
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz: status %d", code)
	}

	// Single-source query, oracle-checked: the daemon generated
	// gen.Uniform(2^10, 16*2^10, seed 5), so we can regenerate it here.
	g := gen.Uniform(1<<10, 16<<10, gen.Config{Seed: 5})
	oracle := seq.Dijkstra(g, 1)
	var sr struct {
		CacheHit  bool    `json:"cache_hit"`
		Reachable int     `json:"reachable"`
		Checksum  float64 `json:"checksum"`
	}
	code, body := get("/sssp?source=1")
	if code != 200 {
		t.Fatalf("sssp: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	wantReach, wantSum := 0, 0.0
	for _, d := range oracle.Dist {
		if d < seq.Inf {
			wantReach++
			wantSum += d
		}
	}
	if sr.CacheHit || sr.Reachable != wantReach {
		t.Fatalf("sssp: cache_hit=%v reachable=%d, want miss with %d reachable", sr.CacheHit, sr.Reachable, wantReach)
	}
	if diff := sr.Checksum - wantSum; diff > 1e-6*wantSum || diff < -1e-6*wantSum {
		t.Fatalf("sssp checksum %g, oracle %g", sr.Checksum, wantSum)
	}

	// Repeat: must hit the LRU cache.
	code, body = get("/sssp?source=1")
	if err := json.Unmarshal(body, &sr); code != 200 || err != nil || !sr.CacheHit {
		t.Fatalf("repeat sssp: status %d hit=%v err=%v", code, sr.CacheHit, err)
	}

	// Point-to-point, oracle-checked.
	var pr struct {
		Reachable bool     `json:"reachable"`
		Distance  *float64 `json:"distance"`
	}
	code, body = get("/path?source=2&target=900")
	if code != 200 {
		t.Fatalf("path: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(g, 2).Dist[900]
	if want < seq.Inf {
		if !pr.Reachable || pr.Distance == nil || *pr.Distance-want > 1e-9 || want-*pr.Distance > 1e-9 {
			t.Fatalf("path: %+v, oracle %g", pr, want)
		}
	} else if pr.Reachable {
		t.Fatal("path: reachable, oracle says not")
	}

	// Bad input: out-of-range source must be a 400, not a panic.
	if code, _ := get("/sssp?source=99999"); code != 400 {
		t.Fatalf("out-of-range source: status %d, want 400", code)
	}

	// Mutation round-trip: POST /mutate inserts an edge, the epoch bumps,
	// and the repaired resident vector for source 1 serves the next query
	// as a cache hit with the post-mutation oracle checksum.
	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/mutate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /mutate: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	var mres struct {
		Epoch           uint64 `json:"epoch"`
		Inserted        int    `json:"inserted"`
		RepairedVectors int    `json:"repaired_vectors"`
	}
	code, body = post(`{"mutations":[{"op":"insert","from":1,"to":900,"weight":0.5}]}`)
	if code != 200 {
		t.Fatalf("mutate: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &mres); err != nil {
		t.Fatal(err)
	}
	if mres.Epoch != 1 || mres.Inserted != 1 || mres.RepairedVectors < 1 {
		t.Fatalf("mutate response %+v, want epoch 1, 1 insert, >=1 repaired vector", mres)
	}
	mg := graph.MustBuild(g.NumVertices(), append(g.Edges(), graph.Edge{From: 1, To: 900, Weight: 0.5}))
	moracle := seq.Dijkstra(mg, 1)
	wantReach, wantSum = 0, 0.0
	for _, d := range moracle.Dist {
		if d < seq.Inf {
			wantReach++
			wantSum += d
		}
	}
	var sr2 struct {
		Epoch     uint64  `json:"epoch"`
		CacheHit  bool    `json:"cache_hit"`
		Reachable int     `json:"reachable"`
		Checksum  float64 `json:"checksum"`
	}
	code, body = get("/sssp?source=1")
	if code != 200 {
		t.Fatalf("post-mutation sssp: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.Epoch != 1 || !sr2.CacheHit {
		t.Fatalf("post-mutation sssp: epoch=%d cache_hit=%v, want repaired hit at epoch 1", sr2.Epoch, sr2.CacheHit)
	}
	if sr2.Reachable != wantReach {
		t.Fatalf("post-mutation sssp: reachable %d, oracle %d", sr2.Reachable, wantReach)
	}
	if diff := sr2.Checksum - wantSum; diff > 1e-6*wantSum || diff < -1e-6*wantSum {
		t.Fatalf("post-mutation checksum %g, oracle %g", sr2.Checksum, wantSum)
	}
	// Bad mutation batches: missing edge and unknown op are 400s, and the
	// epoch stays put.
	if code, _ := post(`{"mutations":[{"op":"delete","from":1,"to":1}]}`); code != 400 {
		t.Fatalf("delete of missing edge: status %d, want 400", code)
	}
	if code, _ := post(`{"mutations":[{"op":"teleport","from":0,"to":1}]}`); code != 400 {
		t.Fatalf("unknown op: status %d, want 400", code)
	}
	var h struct {
		Epoch uint64 `json:"epoch"`
	}
	if code, body := get("/healthz"); code != 200 {
		t.Fatalf("healthz after mutate: status %d", code)
	} else if err := json.Unmarshal(body, &h); err != nil || h.Epoch != 1 {
		t.Fatalf("healthz epoch %d (err %v), want 1", h.Epoch, err)
	}

	// Saturation: fire concurrent uncached queries at a capacity of one
	// executing + one queued; the rest must shed with 429 + Retry-After.
	saw429 := false
	for round := 0; round < 5 && !saw429; round++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				resp, err := http.Get(fmt.Sprintf("%s/sssp?source=%d", base, src))
				if err != nil {
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode == http.StatusTooManyRequests {
					mu.Lock()
					saw429 = true
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Unlock()
				}
			}(10 + round*16 + i)
		}
		wg.Wait()
	}
	if !saw429 {
		t.Fatal("never observed a 429 under 5 rounds of 16-way fan-in at capacity 2")
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if out := <-outAll; !strings.Contains(out, "drained cleanly") {
		t.Errorf("shutdown output missing 'drained cleanly': %q", out)
	}
}
