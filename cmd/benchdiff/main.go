// Command benchdiff compares the BENCH_N.json records produced by
// scripts/bench.sh and enforces the perf-regression gate in CI.
//
// Usage:
//
//	benchdiff OLD.json NEW.json             # print per-benchmark deltas
//	benchdiff -gate OLD.json NEW.json       # also exit 1 on a regression
//	benchdiff -markdown seed=BENCH_1.json pr3=BENCH_3.json pr6=BENCH_6.json
//
// The gate fails when a benchmark's mean ns/op regresses by more than
// -threshold percent (default 10; variance-flagged entries are exempt —
// their numbers are noise), when a zero-alloc benchmark starts
// allocating, or when a baseline benchmark disappears. -markdown renders
// the perf-trajectory table embedded in EXPERIMENTS.md from a labeled
// series of records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acic/internal/benchdiff"
)

func main() {
	var (
		gate      = flag.Bool("gate", false, "exit non-zero when the regression gate fails")
		markdown  = flag.Bool("markdown", false, "render a Markdown trajectory table from label=file arguments")
		threshold = flag.Float64("threshold", 10, "ns/op slowdown percentage that fails the gate")
	)
	flag.Parse()

	if *markdown {
		runMarkdown(flag.Args())
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate] [-threshold PCT] OLD.json NEW.json")
		fmt.Fprintln(os.Stderr, "       benchdiff -markdown label=FILE.json [label=FILE.json ...]")
		os.Exit(2)
	}
	old, err := benchdiff.Load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := benchdiff.Load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	fmt.Printf("benchdiff: %s (%s) -> %s (%s)\n", flag.Arg(0), old.Commit, flag.Arg(1), cur.Commit)
	fmt.Print(benchdiff.DiffTable(old, cur))
	violations := benchdiff.Gate(old, cur, *threshold)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", v)
	}
	if len(violations) == 0 {
		fmt.Println("benchdiff: gate OK")
	} else if *gate {
		os.Exit(1)
	}
}

// runMarkdown renders the trajectory table from label=file arguments,
// oldest first.
func runMarkdown(argv []string) {
	if len(argv) == 0 {
		fail(fmt.Errorf("-markdown needs at least one label=FILE.json argument"))
	}
	labels := make([]string, 0, len(argv))
	files := make([]*benchdiff.File, 0, len(argv))
	for _, arg := range argv {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			fail(fmt.Errorf("argument %q is not label=FILE.json", arg))
		}
		f, err := benchdiff.Load(path)
		if err != nil {
			fail(err)
		}
		labels = append(labels, label)
		files = append(files, f)
	}
	fmt.Print(benchdiff.MarkdownTrajectory(labels, files))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
