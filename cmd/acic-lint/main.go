// Command acic-lint runs the project's invariant analyzers (see
// internal/analysis and DESIGN.md "Codebase invariants") over package
// patterns, exactly like a go/analysis multichecker:
//
//	go run ./cmd/acic-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 load failure. scripts/ci.sh runs it
// as a gate on every push.
package main

import (
	"acic/internal/analysis/detrand"
	"acic/internal/analysis/locksend"
	"acic/internal/analysis/multichecker"
	"acic/internal/analysis/nogoroutine"
	"acic/internal/analysis/releasecheck"
)

func main() {
	multichecker.Main(
		detrand.Analyzer,
		locksend.Analyzer,
		nogoroutine.Analyzer,
		releasecheck.Analyzer,
	)
}
