// Command acic-lint runs the project's invariant analyzers (see
// internal/analysis and DESIGN.md "Codebase invariants") over package
// patterns, exactly like a go/analysis multichecker:
//
//	go run ./cmd/acic-lint ./...
//	go run ./cmd/acic-lint -json ./... > lint.json
//	go run ./cmd/acic-lint -noalloc ./...
//
// Exit status: 0 clean, 1 findings, 2 load failure. scripts/ci.sh runs it
// (both modes) as a gate on every push.
package main

import (
	"acic/internal/analysis"
	"acic/internal/analysis/arenacheck"
	"acic/internal/analysis/atomiccheck"
	"acic/internal/analysis/detrand"
	"acic/internal/analysis/dircheck"
	"acic/internal/analysis/lockorder"
	"acic/internal/analysis/locksend"
	"acic/internal/analysis/multichecker"
	"acic/internal/analysis/noalloc"
	"acic/internal/analysis/nogoroutine"
	"acic/internal/analysis/releasecheck"
	"acic/internal/analysis/sharedpad"
)

func main() {
	multichecker.Main(multichecker.Options{
		Analyzers: []*analysis.Analyzer{
			arenacheck.Analyzer,
			atomiccheck.Analyzer,
			detrand.Analyzer,
			dircheck.Analyzer,
			lockorder.Analyzer,
			locksend.Analyzer,
			nogoroutine.Analyzer,
			releasecheck.Analyzer,
			sharedpad.Analyzer,
		},
		Noalloc: noalloc.Check,
	})
}
