// Command acic-stress runs the seeded differential schedule-stress harness
// (internal/stress): every algorithm in the repository, across a matrix of
// topologies, graph families and adversarial jitter profiles, each run
// checked against its sequential oracle and audited for exact message
// conservation. One master seed determines the whole matrix, so any
// counterexample schedule is replayable — a failing run prints the exact
// command that re-executes it alone.
//
// Examples:
//
//	acic-stress -short                 # the CI smoke pass
//	acic-stress -seed 7 -runs 3        # three full passes with seed 7
//	acic-stress -profile burst,reorder # only those jitter profiles
//	acic-stress -fault drop,lossy      # only those fabric fault profiles
//	acic-stress -seed 7 -run 42        # replay run #42 of seed 7's matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"acic/internal/stress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run parses args, executes the harness, prints the report, and returns
// the process exit code.
func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("acic-stress", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "master seed; determines the whole run matrix")
		runs     = fs.Int("runs", 1, "full passes over the algorithm × topology × graph × profile matrix")
		profiles = fs.String("profile", "all", "comma-separated jitter profiles (uniform, stall-tier, reorder, burst) or 'all'")
		faults   = fs.String("fault", "all", "comma-separated fabric fault profiles for the acic reliability sub-matrix (drop, dup, reorder, lossy), 'all', or 'none' to disable it")
		churn    = fs.String("churn", "on", "dynamic-graph churn sub-matrix: on, off, or only")
		short    = fs.Bool("short", false, "CI smoke mode: shrunken matrix and graphs")
		only     = fs.Int("run", -1, "replay exactly one run index from the matrix")
		timeout  = fs.Duration("timeout", 60*time.Second, "per-run hang watchdog")
		verbose  = fs.Bool("v", false, "log every run, not only failures")
		artDir   = fs.String("artifacts", "", "replay failing acic runs instrumented and dump trace/metrics/audit under DIR/run-N/")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	churnMode, err := stress.ParseChurn(*churn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := stress.Options{
		Seed:        *seed,
		Rounds:      *runs,
		Churn:       churnMode,
		Short:       *short,
		Timeout:     *timeout,
		Log:         out,
		Verbose:     *verbose,
		ArtifactDir: *artDir,
	}
	if *only >= 0 {
		opts.Only = only
	}
	if *profiles != "all" {
		for _, s := range strings.Split(*profiles, ",") {
			p, err := stress.ParseProfile(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			opts.Profiles = append(opts.Profiles, p)
		}
	}
	if *faults != "all" {
		for _, s := range strings.Split(*faults, ",") {
			f, err := stress.ParseFault(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			opts.Faults = append(opts.Faults, f)
		}
	}
	rep, err := stress.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(rep.Failures) > 0 {
		fmt.Fprintf(out, "\nstress: %d/%d runs FAILED (seed %d)\n", len(rep.Failures), rep.Total, *seed)
		for _, f := range rep.Failures {
			fmt.Fprintf(out, "  %s\n  replay: go run ./cmd/acic-stress %s -run %d\n",
				f.Spec, replayFlags(*seed, *runs, *profiles, *faults, *churn, *short), f.Spec.Index)
		}
		return 1
	}
	fmt.Fprintf(out, "stress: %d runs ok (seed %d)\n", rep.Total, *seed)
	return 0
}

// replayFlags reconstructs the enumeration-determining flags so the printed
// replay command rebuilds the identical matrix and hits the same run index.
func replayFlags(seed uint64, runs int, profiles, faults, churn string, short bool) string {
	s := fmt.Sprintf("-seed %d -runs %d", seed, runs)
	if profiles != "all" {
		s += " -profile " + profiles
	}
	if faults != "all" {
		s += " -fault " + faults
	}
	if churn != "on" {
		s += " -churn " + churn
	}
	if short {
		s += " -short"
	}
	return s
}
