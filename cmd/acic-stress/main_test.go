package main

import (
	"os"
	"testing"
)

func TestReplayFlags(t *testing.T) {
	cases := []struct {
		seed     uint64
		runs     int
		profiles string
		faults   string
		churn    string
		short    bool
		want     string
	}{
		{1, 1, "all", "all", "on", false, "-seed 1 -runs 1"},
		{7, 3, "all", "all", "on", true, "-seed 7 -runs 3 -short"},
		{2, 1, "burst,reorder", "all", "on", false, "-seed 2 -runs 1 -profile burst,reorder"},
		{4, 2, "all", "drop,lossy", "on", false, "-seed 4 -runs 2 -fault drop,lossy"},
		{5, 1, "none", "none", "on", true, "-seed 5 -runs 1 -profile none -fault none -short"},
		{6, 1, "all", "all", "only", true, "-seed 6 -runs 1 -churn only -short"},
		{8, 1, "all", "all", "off", false, "-seed 8 -runs 1 -churn off"},
	}
	for _, c := range cases {
		if got := replayFlags(c.seed, c.runs, c.profiles, c.faults, c.churn, c.short); got != c.want {
			t.Errorf("replayFlags(%d,%d,%q,%q,%q,%v) = %q, want %q", c.seed, c.runs, c.profiles, c.faults, c.churn, c.short, got, c.want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-profile", "bogus"}, os.Stdout); code != 2 {
		t.Errorf("bad profile: exit %d, want 2", code)
	}
	if code := run([]string{"-nope"}, os.Stdout); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

// TestRunSingleReplay executes exactly one fabric run through the real CLI
// path — the replay workflow a failing seed prints.
func TestRunSingleReplay(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-short", "-run", "0"}, devnull); code != 0 {
		t.Errorf("replay of run 0 failed with exit %d", code)
	}
}
