// Command acic-launch runs ACIC across real OS processes: it spawns one
// worker process per topology process, wires them together over loopback
// TCP (internal/sockfab), and merges their partial results. Every worker
// regenerates the same graph from the shared seed, hosts its span of PEs,
// and reports its slice of the distance vector plus its conservation
// ledger; the launcher validates the merge against sequential Dijkstra and
// checks that every per-process ledger closes and that the cross-process
// boundary counters balance launch-wide.
//
// The worker handshake runs over the child's stdio:
//
//	worker -> launcher:  ADDR <listen address>
//	launcher -> worker:  PEERS <addr0>,<addr1>,...
//	worker -> launcher:  RESULT <WorkerResult JSON>
//
// Example:
//
//	acic-launch -kind rmat -scale 12 -ppn 4 -pepp 2
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strings"
	"time"

	"acic/internal/core"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/netsim"
	"acic/internal/seq"
	"acic/internal/tram"
)

func main() {
	var (
		kind       = flag.String("kind", "random", "generated graph kind: rmat | random | grid")
		scale      = flag.Int("scale", 12, "2^scale vertices")
		edgeFactor = flag.Int("edgefactor", 16, "edges = edgefactor * 2^scale")
		seed       = flag.Uint64("seed", 1, "random seed (shared by every worker)")
		source     = flag.Int("source", 0, "source vertex")
		nodes      = flag.Int("nodes", 1, "cluster nodes in the topology")
		ppn        = flag.Int("ppn", 4, "processes per node = worker OS processes")
		pepp       = flag.Int("pepp", 2, "PEs per process")
		ptram      = flag.Float64("ptram", 0.999, "ACIC p_tram percentile fraction")
		ppq        = flag.Float64("ppq", 0.05, "ACIC p_pq percentile fraction")
		bufSize    = flag.Int("bufsize", tram.DefaultCapacity, "tramlib buffer capacity")
		verify     = flag.Bool("verify", true, "check merged distances against Dijkstra")
		timeout    = flag.Duration("timeout", 2*time.Minute, "kill the launch after this long")
		workerIdx  = flag.Int("worker", -1, "internal: run as worker process N")
	)
	flag.Parse()

	topo := netsim.Topology{Nodes: *nodes, ProcsPerNode: *ppn, PEsPerProc: *pepp}
	cfg := runCfg{
		kind: *kind, scale: *scale, edgeFactor: *edgeFactor, seed: *seed,
		source: *source, topo: topo, ptram: *ptram, ppq: *ppq, bufSize: *bufSize,
	}
	if *workerIdx >= 0 {
		if err := runWorker(cfg, *workerIdx); err != nil {
			fmt.Fprintf(os.Stderr, "acic-launch worker %d: %v\n", *workerIdx, err)
			os.Exit(1)
		}
		return
	}
	if err := runLauncher(cfg, *verify, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "acic-launch: %v\n", err)
		os.Exit(1)
	}
}

// runCfg is everything a worker needs to rebuild the launcher's exact run:
// the graph recipe and the machine shape. It travels as argv.
type runCfg struct {
	kind       string
	scale      int
	edgeFactor int
	seed       uint64
	source     int
	topo       netsim.Topology
	ptram      float64
	ppq        float64
	bufSize    int
}

func (c runCfg) argv(worker int) []string {
	return []string{
		"-kind", c.kind,
		"-scale", fmt.Sprint(c.scale),
		"-edgefactor", fmt.Sprint(c.edgeFactor),
		"-seed", fmt.Sprint(c.seed),
		"-source", fmt.Sprint(c.source),
		"-nodes", fmt.Sprint(c.topo.Nodes),
		"-ppn", fmt.Sprint(c.topo.ProcsPerNode),
		"-pepp", fmt.Sprint(c.topo.PEsPerProc),
		"-ptram", fmt.Sprint(c.ptram),
		"-ppq", fmt.Sprint(c.ppq),
		"-bufsize", fmt.Sprint(c.bufSize),
		"-worker", fmt.Sprint(worker),
	}
}

func (c runCfg) buildGraph() (*graph.Graph, error) {
	gcfg := gen.Config{Seed: c.seed}
	n := 1 << c.scale
	switch c.kind {
	case "rmat":
		return gen.RMAT(c.scale, c.edgeFactor, gen.DefaultRMAT(), gcfg), nil
	case "random":
		return gen.Uniform(n, c.edgeFactor*n, gcfg), nil
	case "grid":
		side := 1 << (c.scale / 2)
		return gen.Grid(side, side, gcfg), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", c.kind)
	}
}

func (c runCfg) options() core.Options {
	p := core.DefaultParams()
	p.PTram, p.PPQ = c.ptram, c.ppq
	p.TramCapacity = c.bufSize
	return core.Options{Topo: c.topo, Params: p}
}

// runWorker is the child side: rebuild the run, listen, hand the address
// to the launcher, wait for the peer list, run, report.
func runWorker(cfg runCfg, proc int) error {
	g, err := cfg.buildGraph()
	if err != nil {
		return err
	}
	w, err := core.NewWorker(g, cfg.source, cfg.options(), proc)
	if err != nil {
		return err
	}
	fmt.Printf("ADDR %s\n", w.Addr())

	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		return fmt.Errorf("stdin closed before the peer list arrived: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "PEERS ") {
		return fmt.Errorf("expected PEERS line, got %q", line)
	}
	addrs := strings.Split(strings.TrimPrefix(line, "PEERS "), ",")

	res, err := w.Run(addrs)
	if err != nil {
		return err
	}
	// JSON has no +Inf; unreachable vertices travel as -1 (distances are
	// never negative) and the launcher restores them.
	for i, d := range res.Dist {
		if math.IsInf(d, 1) {
			res.Dist[i] = -1
		}
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Printf("RESULT %s\n", out)
	return nil
}

// workerProc is the launcher's handle on one child.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	lines  *bufio.Scanner
	result *core.WorkerResult
}

// expect reads the child's next stdout line and strips the given prefix.
func (w *workerProc) expect(prefix string) (string, error) {
	if !w.lines.Scan() {
		if err := w.lines.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("worker exited before sending %s", prefix)
	}
	line := w.lines.Text()
	if !strings.HasPrefix(line, prefix+" ") {
		return "", fmt.Errorf("expected %s line, got %q", prefix, line)
	}
	return strings.TrimPrefix(line, prefix+" "), nil
}

// runLauncher is the parent side: spawn, handshake, merge, validate.
func runLauncher(cfg runCfg, verify bool, timeout time.Duration) error {
	if err := cfg.topo.Validate(); err != nil {
		return err
	}
	procs := cfg.topo.TotalProcs()
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	start := time.Now()
	workers := make([]*workerProc, procs)
	defer func() {
		// On any failure path, make sure no child outlives the launcher.
		for _, w := range workers {
			if w != nil && w.cmd.Process != nil {
				w.cmd.Process.Kill()
				w.cmd.Wait()
			}
		}
	}()
	for p := 0; p < procs; p++ {
		cmd := exec.CommandContext(ctx, exe, cfg.argv(p)...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker %d: %w", p, err)
		}
		workers[p] = &workerProc{cmd: cmd, stdin: stdin, lines: bufio.NewScanner(stdout)}
	}

	// Collect every worker's listen address, then publish the full list.
	addrs := make([]string, procs)
	for p, w := range workers {
		addr, err := w.expect("ADDR")
		if err != nil {
			return fmt.Errorf("worker %d: %w", p, err)
		}
		addrs[p] = addr
	}
	peers := "PEERS " + strings.Join(addrs, ",") + "\n"
	for p, w := range workers {
		if _, err := io.WriteString(w.stdin, peers); err != nil {
			return fmt.Errorf("worker %d: sending peer list: %w", p, err)
		}
	}

	// Workers run concurrently; RESULT lines arrive in whatever order the
	// processes finish, but each child's own stream is ordered, so reading
	// them sequentially here cannot deadlock — only wait.
	for p, w := range workers {
		payload, err := w.expect("RESULT")
		if err != nil {
			return fmt.Errorf("worker %d: %w", p, err)
		}
		res := new(core.WorkerResult)
		if err := json.Unmarshal([]byte(payload), res); err != nil {
			return fmt.Errorf("worker %d: bad result: %w", p, err)
		}
		for i, d := range res.Dist {
			if d < 0 {
				res.Dist[i] = math.Inf(1)
			}
		}
		w.result = res
	}
	for p, w := range workers {
		w.stdin.Close()
		if err := w.cmd.Wait(); err != nil {
			return fmt.Errorf("worker %d: %w", p, err)
		}
		workers[p].cmd.Process = nil
	}
	elapsed := time.Since(start)

	return validate(cfg, workers, verify, elapsed)
}

// validate merges the partial results and holds the launch to the same
// bar as the in-process tests: full coverage, per-process ledgers closed,
// boundary flow balanced, and (optionally) exact agreement with Dijkstra.
func validate(cfg runCfg, workers []*workerProc, verify bool, elapsed time.Duration) error {
	g, err := cfg.buildGraph()
	if err != nil {
		return err
	}
	dist := make([]float64, g.NumVertices())
	seen := make([]bool, g.NumVertices())
	var boundaryOut, boundaryIn, reductions int64
	for p, w := range workers {
		res := w.result
		for i, v := range res.Vertices {
			if v < 0 || int(v) >= g.NumVertices() || seen[v] {
				return fmt.Errorf("worker %d reported vertex %d out of range or twice", p, v)
			}
			seen[v] = true
			dist[v] = res.Dist[i]
		}
		if un := res.Audit.Unaccounted(); un != 0 {
			return fmt.Errorf("worker %d conservation ledger unbalanced: %d unaccounted (%+v)", p, un, res.Audit)
		}
		if res.Audit.NetQueue != 0 {
			return fmt.Errorf("worker %d fabric not drained: %d frames queued", p, res.Audit.NetQueue)
		}
		boundaryOut += res.Audit.BoundaryOut
		boundaryIn += res.Audit.BoundaryIn
		reductions += res.Reductions
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("vertex %d reported by no worker", v)
		}
	}
	if boundaryOut != boundaryIn {
		return fmt.Errorf("boundary flow unbalanced across the launch: %d out, %d in", boundaryOut, boundaryIn)
	}

	if verify {
		want := seq.Dijkstra(g, cfg.source)
		if !seq.Equal(dist, want.Dist) {
			i := seq.FirstMismatch(dist, want.Dist)
			return fmt.Errorf("distance mismatch at vertex %d: workers=%v dijkstra=%v", i, dist[i], want.Dist[i])
		}
	}

	var checksum float64
	reachable := 0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			checksum += d
			reachable++
		}
	}
	fmt.Printf("procs=%d pes=%d vertices=%d edges=%d reachable=%d checksum=%.4f reductions=%d boundary=%d elapsed=%s verified=%t\n",
		cfg.topo.TotalProcs(), cfg.topo.TotalPEs(), g.NumVertices(), g.NumEdges(),
		reachable, checksum, reductions, boundaryOut, elapsed.Round(time.Millisecond), verify)
	return nil
}
