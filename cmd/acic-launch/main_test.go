package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acic/internal/netsim"
	"acic/internal/tram"
)

// TestMain lets the test binary stand in for the acic-launch binary:
// runLauncher re-executes os.Executable() with "-worker N", which inside a
// test process is this very binary — so worker argv is routed to main()
// instead of the test runner, and TestLaunchInProcess can drive the real
// launcher code path under coverage.
func TestMain(m *testing.M) {
	for _, a := range os.Args[1:] {
		if a == "-worker" || strings.HasPrefix(a, "-worker=") {
			main()
			return
		}
	}
	os.Exit(m.Run())
}

// TestLaunchSmoke builds the binary and runs a real multi-process launch:
// four worker OS processes over loopback TCP, verified against Dijkstra
// by the launcher itself (-verify is the default).
func TestLaunchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := filepath.Join(t.TempDir(), "acic-launch")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building acic-launch: %v", err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"rmat-4proc", []string{"-kind", "rmat", "-scale", "9", "-ppn", "4", "-pepp", "2"}},
		{"grid-4proc", []string{"-kind", "grid", "-scale", "8", "-ppn", "4", "-pepp", "1"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-timeout", "60s"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if err != nil {
				t.Fatalf("launch failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), "verified=true") {
				t.Fatalf("launch did not verify:\n%s", out)
			}
		})
	}
}

// TestLaunchInProcess drives runLauncher directly (workers are this test
// binary, see TestMain): the handshake, merge, ledger checks and Dijkstra
// validation all run in this process.
func TestLaunchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	cfg := runCfg{
		kind: "grid", scale: 6, edgeFactor: 2, seed: 5, source: 0,
		topo:  netsim.Topology{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 2},
		ptram: 0.999, ppq: 0.05, bufSize: tram.DefaultCapacity,
	}
	if err := runLauncher(cfg, true, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestBuildGraphKinds pins the graph recipes every worker rebuilds from
// argv, and that an unknown kind is rejected.
func TestBuildGraphKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "random", "grid"} {
		cfg := runCfg{kind: kind, scale: 4, edgeFactor: 2, seed: 1}
		g, err := cfg.buildGraph()
		if err != nil || g.NumVertices() == 0 {
			t.Errorf("buildGraph(%q): %v", kind, err)
		}
	}
	if _, err := (runCfg{kind: "bogus", scale: 4}).buildGraph(); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestArgvRoundTrips pins that a worker rebuilt from argv sees the
// launcher's exact configuration.
func TestArgvRoundTrips(t *testing.T) {
	cfg := runCfg{
		kind: "rmat", scale: 7, edgeFactor: 4, seed: 9, source: 3,
		topo:  netsim.Topology{Nodes: 2, ProcsPerNode: 3, PEsPerProc: 2},
		ptram: 0.9, ppq: 0.1, bufSize: 256,
	}
	argv := cfg.argv(4)
	got := map[string]string{}
	for i := 0; i+1 < len(argv); i += 2 {
		got[argv[i]] = argv[i+1]
	}
	for flagName, want := range map[string]string{
		"-kind": "rmat", "-scale": "7", "-edgefactor": "4", "-seed": "9",
		"-source": "3", "-nodes": "2", "-ppn": "3", "-pepp": "2",
		"-ptram": "0.9", "-ppq": "0.1", "-bufsize": "256", "-worker": "4",
	} {
		if got[flagName] != want {
			t.Errorf("argv %s = %q, want %q", flagName, got[flagName], want)
		}
	}
	opts := cfg.options()
	if opts.Params.PTram != cfg.ptram || opts.Params.PPQ != cfg.ppq || opts.Params.TramCapacity != cfg.bufSize {
		t.Errorf("options() dropped a parameter: %+v", opts.Params)
	}
	if opts.Topo != cfg.topo {
		t.Errorf("options() topo = %+v, want %+v", opts.Topo, cfg.topo)
	}
}

// TestLaunchRejectsBadTopology pins that a bad shape fails before any
// worker spawns.
func TestLaunchRejectsBadTopology(t *testing.T) {
	cfg := runCfg{kind: "grid", scale: 6, edgeFactor: 2, seed: 1}
	if err := runLauncher(cfg, false, 0); err == nil {
		t.Fatal("zero topology accepted")
	}
}
