// Command acic-run executes one SSSP algorithm on one graph over the
// simulated machine and prints the distances' checksum plus the run's
// statistics. It is the counterpart of the artifact's weighted_htram_smp
// binary (A2), with the graph either generated in-process (like the
// artifact's generate mode `1`) or read from an edge-list CSV (mode `0`).
//
// Examples:
//
//	acic-run -algo acic -kind random -scale 14 -nodes 2
//	acic-run -algo delta -kind rmat -scale 14 -ptram 0.999
//	acic-run -algo acic -input graph.csv -vertices 16384 -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"acic/internal/core"
	"acic/internal/delta2d"
	"acic/internal/deltastep"
	"acic/internal/distctrl"
	"acic/internal/gctune"
	"acic/internal/gen"
	"acic/internal/graph"
	"acic/internal/kla"
	"acic/internal/metrics"
	"acic/internal/netsim"
	"acic/internal/relnet"
	"acic/internal/seq"
	"acic/internal/stress"
	"acic/internal/trace"
	"acic/internal/tram"
)

func main() {
	var (
		algo       = flag.String("algo", "acic", "algorithm: acic | delta | delta2d | distctrl | kla | dijkstra | bellmanford")
		kind       = flag.String("kind", "random", "generated graph kind: rmat | random | grid")
		scale      = flag.Int("scale", 12, "2^scale vertices for generated graphs")
		edgeFactor = flag.Int("edgefactor", 16, "edges = edgefactor * 2^scale")
		seed       = flag.Uint64("seed", 1, "random seed")
		input      = flag.String("input", "", "edge-list CSV to load instead of generating")
		vertices   = flag.Int("vertices", 0, "vertex count for -input graphs")
		source     = flag.Int("source", 0, "source vertex")
		nodes      = flag.Int("nodes", 1, "simulated cluster nodes")
		ppn        = flag.Int("ppn", 2, "processes per node")
		pepp       = flag.Int("pepp", 2, "PEs per process")
		ptram      = flag.Float64("ptram", 0.999, "ACIC p_tram percentile fraction")
		ppq        = flag.Float64("ppq", 0.05, "ACIC p_pq percentile fraction")
		bufSize    = flag.Int("bufsize", tram.DefaultCapacity, "tramlib buffer capacity")
		mode       = flag.String("trammode", "WP", "tram aggregation mode: WW | WP | PW | PP")
		delta      = flag.Float64("delta", 0, "Δ-stepping bucket width (0 = heuristic)")
		hybrid     = flag.Bool("hybrid", true, "Δ-stepping: enable Bellman-Ford switch")
		verify     = flag.Bool("verify", false, "check distances against Dijkstra")
		printDist  = flag.Int("printdist", 0, "print the first N distances")
		faultName  = flag.String("fault", "none", "fabric fault profile for ACIC runs: none | drop | dup | reorder | lossy (seeded by -seed; enables the reliability layer)")
		unreliable = flag.Bool("unreliable", false, "with -fault: keep the relnet reliability layer off (drop faults then hang loudly)")
		traceSum   = flag.Bool("tracesummary", false, "print per-PE scheduling summary after an ACIC run")
		traceOut   = flag.String("trace-chrome", "", "write the ACIC run's timeline as a Chrome/Perfetto trace to FILE")
		metricsOut = flag.String("metrics-out", "", "write the ACIC run's metrics registry snapshot (JSON) to FILE")
		auditOut   = flag.String("audit-out", "", "write per-reduction threshold audit records to FILE (JSONL, or CSV when FILE ends in .csv)")

		gogc       = flag.Int("gogc", 0, "GC shaping: set the GC target percentage (like GOGC; 0 = leave default, negative = off)")
		gcMemLimit = flag.Int64("gcmemlimit", 0, "GC shaping: soft memory limit in MiB (like GOMEMLIMIT; 0 = leave default)")
		gcBallast  = flag.Int64("ballast", 0, "GC shaping: allocate a dead-heap ballast of this many MiB")
	)
	flag.Parse()
	gc := gctune.Apply(gctune.Config{GCPercent: *gogc, MemLimitMiB: *gcMemLimit, BallastMiB: *gcBallast})
	if gc.Active() {
		fmt.Println(gc)
	}
	if *algo != "acic" && (*traceOut != "" || *metricsOut != "" || *auditOut != "") {
		fail(fmt.Errorf("-trace-chrome/-metrics-out/-audit-out instrument the acic algorithm only (got -algo %s)", *algo))
	}
	fault, err := stress.ParseFault(*faultName)
	if err != nil {
		fail(err)
	}
	if fault != stress.FaultNone && *algo != "acic" {
		fail(fmt.Errorf("-fault injects into the acic driver only (got -algo %s)", *algo))
	}

	g, err := loadGraph(*input, *vertices, *kind, *scale, *edgeFactor, *seed)
	if err != nil {
		fail(err)
	}
	topo := netsim.Topology{Nodes: *nodes, ProcsPerNode: *ppn, PEsPerProc: *pepp}
	latency := netsim.DefaultLatency()
	tramMode, err := parseMode(*mode)
	if err != nil {
		fail(err)
	}

	var dist []float64
	switch *algo {
	case "acic":
		p := core.DefaultParams()
		p.PTram, p.PPQ = *ptram, *ppq
		p.TramCapacity = *bufSize
		p.TramMode = tramMode
		p.AuditTrace = *auditOut != ""
		opts := core.Options{Topo: topo, Latency: latency, Params: p}
		if fault != stress.FaultNone {
			opts.Fault = stress.NewFaultPlan(fault, *seed, topo)
			if !*unreliable {
				opts.Reliability = &relnet.Config{}
			}
		}
		var rec *trace.Recorder
		if *traceSum || *traceOut != "" {
			rec = trace.New(topo.TotalPEs(), 1<<16)
			opts.Trace = rec
		}
		var reg *metrics.Registry
		if *metricsOut != "" {
			reg = metrics.New(topo.TotalPEs())
			opts.Metrics = reg
		}
		res, err := core.Run(g, *source, opts)
		if err != nil {
			fail(err)
		}
		if rec != nil && *traceSum {
			if err := rec.WriteSummary(os.Stdout); err != nil {
				fail(err)
			}
		}
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, rec.WriteChrome); err != nil {
				fail(err)
			}
		}
		if reg != nil {
			if err := writeFileWith(*metricsOut, reg.Snapshot().WriteJSON); err != nil {
				fail(err)
			}
		}
		if *auditOut != "" {
			writer := func(w io.Writer) error { return core.WriteAuditJSONL(w, res.Stats.AuditTrace) }
			if strings.HasSuffix(*auditOut, ".csv") {
				writer = func(w io.Writer) error { return core.WriteAuditCSV(w, res.Stats.AuditTrace) }
			}
			if err := writeFileWith(*auditOut, writer); err != nil {
				fail(err)
			}
		}
		dist = res.Dist
		s := res.Stats
		fmt.Printf("acic: elapsed=%v reductions=%d created=%d processed=%d rejected=%d relaxations=%d\n",
			s.Elapsed, s.Reductions, s.UpdatesCreated, s.UpdatesProcessed, s.UpdatesRejected, s.Relaxations)
		fmt.Printf("tram: inserts=%d batches=%d autoflush=%d manualflush=%d\n",
			s.TramStats.Inserts, s.TramStats.Batches, s.TramStats.AutoFlushes, s.TramStats.ManualFlushes)
		fmt.Printf("net : messages=%d items=%d\n", s.Network.MessagesSent, s.Network.ItemsSent)
		if fault != stress.FaultNone {
			fmt.Printf("rel : dropped=%d duplicated=%d reordered=%d retransmits=%d dupDiscarded=%d acks=%d unaccounted=%d\n",
				s.Network.Dropped, s.Network.Duplicated, s.Network.Reordered,
				s.Audit.Retransmits, s.Audit.DupDiscarded, s.Audit.AcksSent, s.Audit.Unaccounted())
		}
	case "delta":
		p := deltastep.DefaultParams()
		p.Delta = *delta
		p.Hybrid = *hybrid
		p.TramCapacity = *bufSize
		p.TramMode = tramMode
		res, err := deltastep.Run(g, *source, deltastep.Options{Topo: topo, Latency: latency, Params: p})
		if err != nil {
			fail(err)
		}
		dist = res.Dist
		s := res.Stats
		fmt.Printf("delta: elapsed=%v supersteps=%d buckets=%d relaxations=%d rejected=%d switchedBF=%v bfRounds=%d\n",
			s.Elapsed, s.Supersteps, s.BucketsProcessed, s.Relaxations, s.Rejected, s.SwitchedToBF, s.BFRounds)
	case "delta2d":
		p := delta2d.DefaultParams()
		p.Delta = *delta
		p.Hybrid = *hybrid
		p.TramCapacity = *bufSize
		p.TramMode = tramMode
		res, err := delta2d.Run(g, *source, delta2d.Options{Topo: topo, Latency: latency, Params: p})
		if err != nil {
			fail(err)
		}
		dist = res.Dist
		s := res.Stats
		fmt.Printf("delta2d: grid=%dx%d elapsed=%v supersteps=%d buckets=%d relaxations=%d frontier=%d switchedBF=%v\n",
			s.GridRows, s.GridCols, s.Elapsed, s.Supersteps, s.BucketsProcessed, s.Relaxations, s.FrontierMsgs, s.SwitchedToBF)
	case "distctrl":
		p := distctrl.DefaultParams()
		p.TramCapacity = *bufSize
		p.TramMode = tramMode
		res, err := distctrl.Run(g, *source, distctrl.Options{Topo: topo, Latency: latency, Params: p})
		if err != nil {
			fail(err)
		}
		dist = res.Dist
		s := res.Stats
		fmt.Printf("distctrl: elapsed=%v created=%d processed=%d rejected=%d relaxations=%d\n",
			s.Elapsed, s.UpdatesCreated, s.UpdatesProcessed, s.UpdatesRejected, s.Relaxations)
	case "kla":
		p := kla.DefaultParams()
		p.TramCapacity = *bufSize
		p.TramMode = tramMode
		res, err := kla.Run(g, *source, kla.Options{Topo: topo, Latency: latency, Params: p})
		if err != nil {
			fail(err)
		}
		dist = res.Dist
		s := res.Stats
		fmt.Printf("kla: elapsed=%v supersteps=%d barriers=%d relaxations=%d deferred=%d kHistory=%v\n",
			s.Elapsed, s.SuperSteps, s.Barriers, s.Relaxations, s.Deferred, s.KHistory)
	case "dijkstra":
		res := seq.Dijkstra(g, *source)
		dist = res.Dist
		fmt.Printf("dijkstra: settled=%d relaxations=%d\n", res.Settled, res.Relaxations)
	case "bellmanford":
		res := seq.BellmanFord(g, *source)
		dist = res.Dist
		fmt.Printf("bellmanford: settled=%d relaxations=%d\n", res.Settled, res.Relaxations)
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	reached, sum := summarize(dist)
	fmt.Printf("result: reached=%d/%d distance-sum=%.6g\n", reached, len(dist), sum)
	if *verify && *algo != "dijkstra" {
		want := seq.Dijkstra(g, *source)
		if !seq.Equal(dist, want.Dist) {
			fail(fmt.Errorf("VERIFY FAILED at vertex %d", seq.FirstMismatch(dist, want.Dist)))
		}
		fmt.Println("verify: distances match Dijkstra")
	}
	for i := 0; i < *printDist && i < len(dist); i++ {
		fmt.Printf("dist[%d] = %g\n", i, dist[i])
	}
}

func loadGraph(input string, vertices int, kind string, scale, edgeFactor int, seed uint64) (*graph.Graph, error) {
	if input != "" {
		if vertices <= 0 {
			return nil, fmt.Errorf("-input requires -vertices")
		}
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadCSV(f, vertices)
	}
	cfg := gen.Config{Seed: seed}
	n := 1 << scale
	switch kind {
	case "rmat":
		return gen.RMAT(scale, edgeFactor, gen.DefaultRMAT(), cfg), nil
	case "random":
		return gen.Uniform(n, edgeFactor*n, cfg), nil
	case "grid":
		side := 1 << (scale / 2)
		return gen.Grid(side, side, cfg), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func parseMode(s string) (tram.Mode, error) {
	switch strings.ToUpper(s) {
	case "WW":
		return tram.WW, nil
	case "WP":
		return tram.WP, nil
	case "PW":
		return tram.PW, nil
	case "PP":
		return tram.PP, nil
	default:
		return 0, fmt.Errorf("unknown tram mode %q", s)
	}
}

func summarize(dist []float64) (reached int, sum float64) {
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			sum += d
		}
	}
	return reached, sum
}

// writeFileWith creates path and streams write's output into it, returning
// the first error from either the writer or the file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acic-run:", err)
	os.Exit(1)
}
