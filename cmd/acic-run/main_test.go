package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"acic/internal/tram"
)

func TestParseMode(t *testing.T) {
	cases := map[string]tram.Mode{"WW": tram.WW, "wp": tram.WP, "Pw": tram.PW, "PP": tram.PP}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = (%v,%v), want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("XX"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestSummarize(t *testing.T) {
	dist := []float64{0, 2.5, math.Inf(1), 1.5}
	reached, sum := summarize(dist)
	if reached != 3 || sum != 4 {
		t.Errorf("summarize = (%d,%v)", reached, sum)
	}
}

func TestLoadGraphGeneratedKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "random", "grid"} {
		g, err := loadGraph("", 0, kind, 8, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty", kind)
		}
	}
	if _, err := loadGraph("", 0, "bogus", 8, 4, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLoadGraphFromCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := os.WriteFile(path, []byte("0,1,2.5\n1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, 3, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if _, err := loadGraph(path, 0, "", 0, 0, 0); err == nil {
		t.Error("-input without -vertices accepted")
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.csv"), 3, "", 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
