// Command graphgen generates the evaluation's input graphs as edge-list
// CSV files, standing in for the PaRMAT generator plus the
// rmat_preprocess.py weighting step of the paper's artifact (A3).
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -edgefactor 16 -seed 1 -o graph.csv
//	graphgen -kind random -scale 14 -o random.csv
//	graphgen -kind grid -scale 12 -o road.csv
//
// The output format is "from,to,weight" per line, sorted ascending by
// source vertex, exactly what cmd/acic-run -input consumes.
package main

import (
	"flag"
	"fmt"
	"os"

	"acic/internal/gen"
	"acic/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "graph kind: rmat | random | grid | erdos")
		scale      = flag.Int("scale", 14, "2^scale vertices (paper uses 26)")
		edgeFactor = flag.Int("edgefactor", 16, "edges = edgefactor * 2^scale (paper uses 16)")
		seed       = flag.Uint64("seed", 1, "random seed for structure and weights")
		maxWeight  = flag.Float64("maxweight", 256, "edge weights drawn uniformly from [1, maxweight)")
		out        = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	g, err := makeGraph(*kind, *scale, *edgeFactor, *seed, *maxWeight)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteCSV(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen: writing edge list:", err)
		os.Exit(1)
	}
	stats := g.OutDegreeStats()
	fmt.Fprintf(os.Stderr, "graphgen: %s graph, |V|=%d |E|=%d, out-degree mean=%.2f max=%d p99=%d\n",
		*kind, g.NumVertices(), g.NumEdges(), stats.Mean, stats.Max, stats.P99)
}

func makeGraph(kind string, scale, edgeFactor int, seed uint64, maxWeight float64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("scale %d out of range [1,30]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("edgefactor must be positive")
	}
	cfg := gen.Config{Seed: seed, MaxWeight: maxWeight}
	n := 1 << scale
	switch kind {
	case "rmat":
		return gen.RMAT(scale, edgeFactor, gen.DefaultRMAT(), cfg), nil
	case "random":
		return gen.Uniform(n, edgeFactor*n, cfg), nil
	case "grid":
		side := 1 << (scale / 2)
		return gen.Grid(side, side, cfg), nil
	case "erdos":
		return gen.ErdosRenyi(n, edgeFactor*n, cfg), nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want rmat, random, grid or erdos)", kind)
	}
}
