package main

import "testing"

func TestMakeGraphKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "random", "grid", "erdos"} {
		g, err := makeGraph(kind, 8, 4, 1, 64)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", kind)
		}
	}
}

func TestMakeGraphValidation(t *testing.T) {
	if _, err := makeGraph("nope", 8, 4, 1, 64); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := makeGraph("rmat", 0, 4, 1, 64); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := makeGraph("rmat", 31, 4, 1, 64); err == nil {
		t.Error("scale 31 accepted")
	}
	if _, err := makeGraph("rmat", 8, 0, 1, 64); err == nil {
		t.Error("edgefactor 0 accepted")
	}
}

func TestMakeGraphDeterministicPerSeed(t *testing.T) {
	a, _ := makeGraph("rmat", 8, 4, 7, 64)
	b, _ := makeGraph("rmat", 8, 4, 7, 64)
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}
