// Command sssp-bench regenerates the paper's tables and figures on the
// simulated machine. Each -fig selector runs one experiment and prints its
// data as an aligned table (or CSV with -csv). See EXPERIMENTS.md for the
// paper-vs-measured record produced with this tool.
//
// Examples:
//
//	sssp-bench -fig 7                # ACIC vs Δ-stepping execution times
//	sssp-bench -fig all -scale 12
//	sssp-bench -fig 4 -sweep paper   # the full 0.05..0.999 sweep of §IV-E
//	sssp-bench -full                 # paper-shaped config (slower)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"acic/internal/bench"
	"acic/internal/collect"
	"acic/internal/core"
	"acic/internal/gctune"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "experiment: 1 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | modes | ablate | road | od | policy | delta | part | rel | dyn | all")
		scale  = flag.Int("scale", 0, "override graph scale (2^scale vertices)")
		trials = flag.Int("trials", 0, "override trials per data point")
		nodes  = flag.String("nodes", "", "override node counts, e.g. 1,2,4,8,16")
		sweep  = flag.String("sweep", "quick", "percentile sweep for figs 4/5: quick | paper")
		full   = flag.Bool("full", false, "use the paper-shaped configuration (slower)")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verify = flag.Bool("verify", false, "verify every run against Dijkstra")
		f3dur  = flag.Duration("fig3window", 2*time.Second, "measurement window per Fig 3 point")
		cost   = flag.Duration("cost", -1, "simulated per-update compute cost (-1 = config default)")

		traceOut   = flag.String("trace-chrome", "", "capture one instrumented ACIC run and write its Chrome/Perfetto trace to FILE")
		metricsOut = flag.String("metrics-out", "", "capture one instrumented ACIC run and write its metrics snapshot (JSON) to FILE")
		auditOut   = flag.String("audit-out", "", "capture one instrumented ACIC run and write its threshold audit to FILE (JSONL, or CSV when FILE ends in .csv)")

		gogc       = flag.Int("gogc", 0, "GC shaping: set the GC target percentage (like GOGC; 0 = leave default, negative = off)")
		gcMemLimit = flag.Int64("gcmemlimit", 0, "GC shaping: soft memory limit in MiB (like GOMEMLIMIT; 0 = leave default)")
		gcBallast  = flag.Int64("ballast", 0, "GC shaping: allocate a dead-heap ballast of this many MiB")
	)
	flag.Parse()
	gc := gctune.Apply(gctune.Config{GCPercent: *gogc, MemLimitMiB: *gcMemLimit, BallastMiB: *gcBallast})
	if gc.Active() {
		fmt.Fprintln(os.Stderr, gc)
	}

	cfg := bench.DefaultConfig()
	if *full {
		cfg = bench.PaperConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *nodes != "" {
		ns, err := parseNodes(*nodes)
		if err != nil {
			fail(err)
		}
		cfg.Nodes = ns
	}
	if *cost >= 0 {
		cfg.ComputeCost = *cost
	}
	cfg.Verify = *verify

	sweepVals := bench.QuickPercentiles()
	if *sweep == "paper" {
		sweepVals = bench.PaperPercentiles()
	}

	emit := func(t *collect.Table) {
		if *csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	fmt.Fprintf(os.Stderr, "sssp-bench: scale=%d (|V|=%d, |E|=%d), trials=%d, nodes=%v, topo=%dx%d per node\n",
		cfg.Scale, cfg.NumVertices(), cfg.EdgeFactor*cfg.NumVertices(), cfg.Trials, cfg.Nodes,
		cfg.ProcsPerNode, cfg.PEsPerProc)

	ran := false
	if want("1") {
		ran = true
		r, err := cfg.Fig1Histogram()
		if err != nil {
			fail(err)
		}
		emit(r.Table())
	}
	if want("3") {
		ran = true
		points, err := cfg.Fig3ReductionOverhead([]int{2, 4, 8, 16}, *f3dur)
		if err != nil {
			fail(err)
		}
		emit(bench.Fig3Table(points))
	}
	if want("4") {
		ran = true
		points, err := cfg.Fig4TramPercentile(sweepVals)
		if err != nil {
			fail(err)
		}
		emit(bench.SweepTable("Fig 4: runtime vs p_tram (paper optimum 0.999)", "p_tram", points))
	}
	if want("5") {
		ran = true
		points, err := cfg.Fig5PQPercentile(sweepVals)
		if err != nil {
			fail(err)
		}
		emit(bench.SweepTable("Fig 5: runtime vs p_pq (paper optimum 0.05)", "p_pq", points))
	}
	if want("6") {
		ran = true
		points, err := cfg.Fig6BufferSize()
		if err != nil {
			fail(err)
		}
		emit(bench.Fig6Table(points))
	}
	if want("7") || want("8") || want("9") {
		ran = true
		points, err := cfg.CompareACICDelta()
		if err != nil {
			fail(err)
		}
		if want("7") {
			emit(bench.Fig7Table(points))
		}
		if want("8") {
			emit(bench.Fig8Table(points))
		}
		if want("9") {
			emit(bench.Fig9Table(points))
		}
	}
	if want("modes") {
		ran = true
		points, err := cfg.AggregationModes(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.ModesTable(points))
	}
	if want("ablate") {
		ran = true
		points, err := cfg.Ablations(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.AblationsTable(points))
	}
	if want("road") {
		ran = true
		points, err := cfg.RoadGraph(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.RoadTable(points))
	}
	if want("od") {
		ran = true
		points, err := cfg.OverDecomposition(lastNode(cfg), []int{1, 4, 16})
		if err != nil {
			fail(err)
		}
		emit(bench.ODTable(points))
	}
	if want("policy") {
		ran = true
		points, err := cfg.ThresholdPolicies(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.PolicyTable(points))
	}
	if want("part") {
		ran = true
		points, err := cfg.PartitionLayouts(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.PartitionTable(points))
	}
	if want("delta") {
		ran = true
		points, err := cfg.DeltaPolicies(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.DeltaTable(points))
	}
	if want("rel") {
		ran = true
		points, err := cfg.ReliabilityOverhead(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		emit(bench.RelTable(points))
	}
	if want("dyn") {
		ran = true
		points, err := cfg.DynamicRepair()
		if err != nil {
			fail(err)
		}
		emit(bench.DynTable(points))
	}
	// Observability capture: one additional fully instrumented ACIC run,
	// written alongside whatever figures ran. With -fig none it is the
	// whole job, so the paper's Fig 4/5 sweeps can be re-examined from the
	// audit log without re-running the sweep (see EXPERIMENTS.md).
	if *traceOut != "" || *metricsOut != "" || *auditOut != "" {
		ran = true
		art, err := cfg.CaptureArtifacts(lastNode(cfg))
		if err != nil {
			fail(err)
		}
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, art.Trace.WriteChrome); err != nil {
				fail(err)
			}
		}
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, art.Metrics.WriteJSON); err != nil {
				fail(err)
			}
		}
		if *auditOut != "" {
			writer := func(w io.Writer) error { return core.WriteAuditJSONL(w, art.Audit) }
			if strings.HasSuffix(*auditOut, ".csv") {
				writer = func(w io.Writer) error { return core.WriteAuditCSV(w, art.Audit) }
			}
			if err := writeFileWith(*auditOut, writer); err != nil {
				fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "sssp-bench: observability capture written (%d audit records)\n", len(art.Audit))
	}
	if !ran {
		fail(fmt.Errorf("unknown figure selector %q", *fig))
	}
}

// writeFileWith creates path and streams write's output into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// lastNode picks the largest configured node count — the ablations are
// most informative at the highest parallelism level of the sweep.
func lastNode(cfg bench.Config) int { return cfg.Nodes[len(cfg.Nodes)-1] }

func parseNodes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sssp-bench:", err)
	os.Exit(1)
}
