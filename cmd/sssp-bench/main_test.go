package main

import (
	"testing"

	"acic/internal/bench"
)

func TestParseNodes(t *testing.T) {
	got, err := parseNodes("1, 2,4,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseNodes = %v", got)
		}
	}
	for _, bad := range []string{"", "x", "1,-2", "0"} {
		if _, err := parseNodes(bad); err == nil {
			t.Errorf("parseNodes(%q) accepted", bad)
		}
	}
}

func TestLastNode(t *testing.T) {
	c := bench.DefaultConfig()
	c.Nodes = []int{1, 2, 8}
	if lastNode(c) != 8 {
		t.Errorf("lastNode = %d", lastNode(c))
	}
}
