module acic

go 1.22
