#!/usr/bin/env bash
# Hot-path benchmark harness.
#
# Protocol (see SNIPPETS.md, "Benchmark Validation Protocol"): build fresh,
# run every benchmark RUNS times, and refuse to treat a number as meaningful
# when the run-to-run spread exceeds VARIANCE_PCT — noisy results are
# reported but flagged. Results land in a JSON file the next PR can diff
# against.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-bench_results.json}"
RUNS=3
VARIANCE_PCT=10

# name | package | extra go test flags
BENCHES=(
  "BenchmarkMailbox/pingpong|./internal/runtime|"
  "BenchmarkMailbox/burst64|./internal/runtime|"
  "BenchmarkNetsimSend|./internal/netsim|"
  "BenchmarkTramInsertFlush|./internal/tram|"
  "BenchmarkHotPathSSSP|./internal/bench|-benchtime=10x"
)

echo "== fresh build =="
go build ./...

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

json_entries=()
flagged_any=0

for spec in "${BENCHES[@]}"; do
  IFS='|' read -r name pkg extra <<<"$spec"
  # Anchor the pattern to the top-level benchmark function.
  pattern="^${name%%/*}\$"
  sub="${name#*/}"
  [ "$sub" != "$name" ] && pattern="^${name%%/*}\$/^${sub}\$"

  echo "== $name ($RUNS runs) =="
  : >"$TMP/runs.txt"
  for i in $(seq "$RUNS"); do
    # shellcheck disable=SC2086
    go test -run='^$' -bench="$pattern" -benchmem $extra "$pkg" \
      | awk -v want="$name" '$1 ~ "^"want { print $3, $5, $7 }' >>"$TMP/runs.txt"
  done

  if [ "$(wc -l <"$TMP/runs.txt")" -ne "$RUNS" ]; then
    echo "error: expected $RUNS result lines for $name" >&2
    exit 1
  fi

  read -r mean spread bytes allocs flag <<<"$(awk -v pct="$VARIANCE_PCT" '
    { ns[NR]=$1; sum+=$1; b=$2; a=$3 }
    END {
      mean = sum/NR
      min = ns[1]; max = ns[1]
      for (i=2; i<=NR; i++) { if (ns[i]<min) min=ns[i]; if (ns[i]>max) max=ns[i] }
      spread = mean > 0 ? 100*(max-min)/mean : 0
      printf "%.2f %.2f %d %d %d", mean, spread, b, a, (spread > pct)
    }' "$TMP/runs.txt")"

  runs_list="$(awk '{printf "%s%s", (NR>1?", ":""), $1}' "$TMP/runs.txt")"
  if [ "$flag" -eq 1 ]; then
    echo "   FLAGGED: ${spread}% run-to-run spread exceeds ${VARIANCE_PCT}% — do not trust ns/op"
    flagged_any=1
  else
    echo "   ok: mean ${mean} ns/op, spread ${spread}%, ${bytes} B/op, ${allocs} allocs/op"
  fi

  json_entries+=("$(printf '    {"name": "%s", "runs_ns_per_op": [%s], "mean_ns_per_op": %s, "spread_pct": %s, "bytes_per_op": %s, "allocs_per_op": %s, "flagged": %s}' \
    "$name" "$runs_list" "$mean" "$spread" "$bytes" "$allocs" "$([ "$flag" -eq 1 ] && echo true || echo false)")")
done

{
  echo '{'
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "runs_per_bench": %d,\n' "$RUNS"
  printf '  "variance_threshold_pct": %d,\n' "$VARIANCE_PCT"
  echo '  "benchmarks": ['
  for i in "${!json_entries[@]}"; do
    sep=','
    [ "$i" -eq $((${#json_entries[@]} - 1)) ] && sep=''
    printf '%s%s\n' "${json_entries[$i]}" "$sep"
  done
  echo '  ]'
  echo '}'
} >"$OUT"

echo "== wrote $OUT =="
[ "$flagged_any" -eq 1 ] && echo "note: at least one benchmark exceeded the variance threshold" >&2
exit 0
