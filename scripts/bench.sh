#!/usr/bin/env bash
# Hot-path benchmark harness.
#
# Protocol (see SNIPPETS.md, "Benchmark Validation Protocol"): build fresh,
# run every benchmark RUNS times, and refuse to treat a number as meaningful
# when the run-to-run spread exceeds VARIANCE_PCT. A noisy benchmark is
# automatically re-run (up to EXTRA_RUNS additional times); statistics are
# then taken over the tightest window of RUNS values, which discards
# machine-noise outliers instead of averaging them in. A benchmark still
# noisy after the extra runs is reported but flagged. Results land in a
# JSON file that cmd/benchdiff gates the next PR against.
#
# Usage: [RUNS=3] [EXTRA_RUNS=3] [VARIANCE_PCT=10] scripts/bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-bench_results.json}"
RUNS="${RUNS:-3}"
EXTRA_RUNS="${EXTRA_RUNS:-3}"
VARIANCE_PCT="${VARIANCE_PCT:-10}"

# name | package | extra go test flags
BENCHES=(
  "BenchmarkMailbox/pingpong|./internal/runtime|"
  "BenchmarkMailbox/burst64|./internal/runtime|"
  "BenchmarkMailbox/spsc-pingpong|./internal/runtime|"
  "BenchmarkMailbox/spsc-burst64|./internal/runtime|"
  "BenchmarkNetsimSend|./internal/netsim|"
  "BenchmarkTramInsertFlush|./internal/tram|"
  "BenchmarkWireEncodeBatch|./internal/core|"
  "BenchmarkWireDecodeReduce|./internal/core|"
  "BenchmarkHotPathSSSP|./internal/bench|-benchtime=10x"
)

echo "== fresh build =="
go build ./...

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# run_pattern NAME -> -bench regexp anchoring EVERY path element, so
# "BenchmarkMailbox/pingpong" runs exactly that case and not the whole
# Mailbox family (go test splits the pattern on "/" and matches each part
# unanchored unless ^...$ is given per part).
run_pattern() {
  local IFS=/ part out=""
  for part in $1; do
    out+="${out:+/}^${part}\$"
  done
  printf '%s' "$out"
}

# run_once NAME PKG EXTRA >> runs.txt: one benchmark execution, appending
# exactly one "ns bytes allocs" line. The awk match is exact (modulo the
# -GOMAXPROCS suffix go test appends), so a sibling like spsc-pingpong can
# never be mistaken for pingpong. Values are picked by their unit label, not
# column position: a benchmark using b.SetBytes inserts an MB/s column that
# would otherwise shift B/op and allocs/op into the wrong fields.
run_once() {
  local name="$1" pkg="$2" extra="$3"
  # shellcheck disable=SC2086
  go test -run='^$' -bench="$(run_pattern "$name")" -benchmem $extra "$pkg" \
    | awk -v want="$name" '$1 ~ "^"want"(-[0-9]+)?$" {
        ns = b = a = 0
        for (i = 2; i < NF; i++) {
          if ($(i+1) == "ns/op") ns = $i
          else if ($(i+1) == "B/op") b = $i
          else if ($(i+1) == "allocs/op") a = $i
        }
        print ns, b, a
      }' >>"$TMP/runs.txt"
}

# stats < runs.txt: prints "mean spread bytes allocs flag kept_list" where
# mean/spread/kept_list come from the tightest window of WINDOW values
# (ascending) and bytes/allocs are the per-run maxima (conservative for the
# zero-alloc gate).
stats() {
  awk -v pct="$VARIANCE_PCT" -v win="$RUNS" '
    { ns[NR]=$1; if ($2>b) b=$2; if ($3>a) a=$3 }
    END {
      n = NR
      # insertion sort ascending
      for (i=2; i<=n; i++) { v=ns[i]; j=i-1; while (j>=1 && ns[j]>v) { ns[j+1]=ns[j]; j-- } ns[j+1]=v }
      if (win > n) win = n
      best = -1
      for (s=1; s+win-1<=n; s++) {
        sum = 0
        for (i=s; i<s+win; i++) sum += ns[i]
        m = sum/win
        sp = m > 0 ? 100*(ns[s+win-1]-ns[s])/m : 0
        if (best < 0 || sp < best) { best = sp; bmean = m; bs = s }
      }
      kept = ""
      for (i=bs; i<bs+win; i++) kept = kept (i>bs ? ", " : "") ns[i]
      printf "%.2f %.2f %d %d %d|%s", bmean, best, b, a, (best > pct), kept
    }' "$TMP/runs.txt"
}

json_entries=()
flagged_any=0

for spec in "${BENCHES[@]}"; do
  IFS='|' read -r name pkg extra <<<"$spec"

  echo "== $name ($RUNS runs, up to $EXTRA_RUNS extra) =="
  : >"$TMP/runs.txt"
  for i in $(seq "$RUNS"); do
    run_once "$name" "$pkg" "$extra"
  done
  if [ "$(wc -l <"$TMP/runs.txt")" -ne "$RUNS" ]; then
    echo "error: expected $RUNS result lines for $name" >&2
    exit 1
  fi

  extra_used=0
  while :; do
    IFS='|' read -r nums runs_list <<<"$(stats)"
    read -r mean spread bytes allocs flag <<<"$nums"
    [ "$flag" -eq 0 ] && break
    [ "$extra_used" -ge "$EXTRA_RUNS" ] && break
    extra_used=$((extra_used + 1))
    echo "   spread ${spread}% > ${VARIANCE_PCT}%, re-running ($extra_used/$EXTRA_RUNS)"
    run_once "$name" "$pkg" "$extra"
  done

  if [ "$flag" -eq 1 ]; then
    echo "   FLAGGED: ${spread}% spread after $((RUNS + extra_used)) runs exceeds ${VARIANCE_PCT}% — do not trust ns/op"
    flagged_any=1
  else
    echo "   ok: mean ${mean} ns/op, spread ${spread}%, ${bytes} B/op, ${allocs} allocs/op ($((RUNS + extra_used)) runs)"
  fi

  json_entries+=("$(printf '    {"name": "%s", "runs_ns_per_op": [%s], "mean_ns_per_op": %s, "spread_pct": %s, "bytes_per_op": %s, "allocs_per_op": %s, "flagged": %s}' \
    "$name" "$runs_list" "$mean" "$spread" "$bytes" "$allocs" "$([ "$flag" -eq 1 ] && echo true || echo false)")")
done

{
  echo '{'
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "runs_per_bench": %d,\n' "$RUNS"
  printf '  "variance_threshold_pct": %d,\n' "$VARIANCE_PCT"
  echo '  "benchmarks": ['
  for i in "${!json_entries[@]}"; do
    sep=','
    [ "$i" -eq $((${#json_entries[@]} - 1)) ] && sep=''
    printf '%s%s\n' "${json_entries[$i]}" "$sep"
  done
  echo '  ]'
  echo '}'
} >"$OUT"

echo "== wrote $OUT =="
[ "$flagged_any" -eq 1 ] && echo "note: at least one benchmark exceeded the variance threshold" >&2
exit 0
