#!/usr/bin/env bash
# Analyzer-suite self-test: plant one violation per analyzer in a scratch
# copy of the tree and assert acic-lint reports every one of them, then do
# the same for the -noalloc escape gate. A lint suite that silently stops
# firing is worse than none — a refactor of the analysis driver could make
# every pass vacuously green and nothing else in CI would notice. This
# script makes "the analyzers still bite" an invariant.
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Copy the module (sans VCS metadata) so the sabotage never touches the tree.
tar --exclude=.git -cf - . | tar -xf - -C "$work"

# One file, one violation per analyzer. internal/core is in every
# package-scoped analyzer's enforcement list and has the arena/tram plumbing
# the ownership analyzers track.
cat > "$work/internal/core/zz_lint_sabotage.go" <<'EOF'
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/runtime"
)

//acic:frobnicate planted for dircheck

var sabMuA, sabMuB sync.Mutex

type sabCounter struct{ n int64 }

type sabShard struct {
	mu sync.Mutex
	n  int
}

var sabShards [4]sabShard

func sabDetrand() time.Time { return time.Now() }

func sabGoroutine() { go func() {}() }

func sabAtomic(c *sabCounter) int64 {
	atomic.AddInt64(&c.n, 1)
	return c.n
}

func sabLockAB(pe *runtime.PE) {
	sabMuA.Lock()
	sabMuB.Lock()
	pe.Send(0, nil, 0)
	sabMuB.Unlock()
	sabMuA.Unlock()
}

func sabLockBA() {
	sabMuB.Lock()
	sabMuA.Lock()
	sabMuA.Unlock()
	sabMuB.Unlock()
}

func sabArena(st *peState) {
	chunk := st.shared.ar.Get(st.me)
	_ = len(chunk)
}

func sabRelease(m batchMsg) int {
	n := 0
	for range m.items {
		n++
	}
	return n
}

//acic:noalloc
func sabNoalloc() *sabCounter { return &sabCounter{} }
EOF

out="$work/findings.json"
if (cd "$work" && go run ./cmd/acic-lint -json ./internal/core/... > "$out"); then
	echo "FAIL: sabotaged tree passed the analyzer suite" >&2
	exit 1
fi

for a in arenacheck atomiccheck detrand dircheck lockorder locksend nogoroutine releasecheck sharedpad; do
	if ! grep -q "\"analyzer\": \"$a\"" "$out"; then
		echo "FAIL: planted $a violation was not reported; findings were:" >&2
		cat "$out" >&2
		exit 1
	fi
	echo "ok: $a fired"
done

if (cd "$work" && go run ./cmd/acic-lint -noalloc ./internal/core/... > "$work/noalloc.txt" 2>&1); then
	echo "FAIL: sabotaged tree passed the noalloc gate" >&2
	exit 1
fi
if ! grep -q "noalloc function sabNoalloc" "$work/noalloc.txt"; then
	echo "FAIL: planted noalloc violation was not reported; output was:" >&2
	cat "$work/noalloc.txt" >&2
	exit 1
fi
echo "ok: noalloc fired"

echo "lint sabotage self-test green"
