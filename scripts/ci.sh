#!/usr/bin/env bash
# Repository CI gate: vet, the project's own analyzers (acic-lint), build,
# full test suite with a coverage floor, the race detector over every
# package, a fuzz smoke pass, the schedule-stress harness, and the perf
# pipeline (benchmark smoke + regression gate against the committed
# BENCH_N.json baseline).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== acic-lint (project analyzers) =="
go run ./cmd/acic-lint ./...

echo "== acic-lint -noalloc (static zero-alloc gate over //acic:noalloc hot paths) =="
go run ./cmd/acic-lint -noalloc ./...

echo "== lint sabotage self-test (every analyzer still bites) =="
scripts/lint_sabotage.sh

echo "== build + test (with coverage) =="
go build ./...
cover_out="$(mktemp)"
trap 'rm -f "$cover_out"' EXIT
go test -coverprofile="$cover_out" ./...

echo "== coverage gate =="
# The checked-in baseline is the total statement coverage at the time the
# observability PR landed; a drop of more than 2pp fails the gate. Raise
# the baseline when coverage genuinely improves.
total="$(go tool cover -func="$cover_out" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
baseline="$(cat scripts/coverage_baseline.txt)"
awk -v t="$total" -v b="$baseline" 'BEGIN {
  if (t + 2.0 < b) {
    printf "FAIL: total coverage %.1f%% is more than 2pp below baseline %.1f%%\n", t, b
    exit 1
  }
  printf "coverage %.1f%% (baseline %.1f%%, floor %.1f%%)\n", t, b, b - 2.0
}'

echo "== race detector (all packages) =="
go test -race ./...

echo "== fuzz smoke (10s per target; one target per invocation) =="
go test -run '^$' -fuzz '^FuzzGraphLoadCSV$' -fuzztime 10s ./internal/graph
go test -run '^$' -fuzz '^FuzzHistogramMerge$' -fuzztime 10s ./internal/histogram
go test -run '^$' -fuzz '^FuzzFrameDecode$' -fuzztime 10s ./internal/wire

echo "== schedule-stress harness (short matrix, incl. fault sub-matrix) =="
go run ./cmd/acic-stress -short
go run -race ./cmd/acic-stress -short -seed 2

echo "== churn smoke (edge-mutation streams, oracle-validated per epoch) =="
# The churn sub-matrix drives mutation batches through both a bare
# dynamic.Graph (repaired in place) and an engine.NewDynamic instance,
# checking every epoch against a sequential Dijkstra recompute. The full
# (non-short) graphs keep the subtree-invalidation path hot; the -race pass
# guards the engine's version-swap and cache-repair concurrency.
go run ./cmd/acic-stress -churn only -runs 2
go run -race ./cmd/acic-stress -short -churn only -seed 3

echo "== query-service smoke (daemon: concurrent sssp+path, cache hit, 429 shed, graceful drain) =="
# TestDaemonSmoke builds the real acic-serve binary, starts it, issues
# concurrent single-source and point-to-point queries (oracle-checked),
# asserts a cache hit on a repeated source and a 429 + Retry-After under
# 16-way fan-in at capacity 2, then SIGTERMs it and requires a clean exit.
go test -count=1 -run '^TestDaemonSmoke$' ./cmd/acic-serve

echo "== multi-process loopback smoke (4 worker OS processes over TCP) =="
# acic-launch spawns four worker processes, runs SSSP over real loopback
# sockets, and verifies the merged result against Dijkstra plus the
# per-process conservation ledgers and cross-process boundary balance
# (-verify is the default). The -race build guards the codec and the
# sockfab reader/writer goroutines.
launch_bin="$(mktemp -d)/acic-launch"
go build -o "$launch_bin" ./cmd/acic-launch
"$launch_bin" -kind rmat -scale 9 -ppn 4 -pepp 2
go run -race ./cmd/acic-launch -kind random -scale 9 -ppn 4 -pepp 2
rm -rf "$(dirname "$launch_bin")"

echo "== lossy-fabric stage (drop+dup+reorder healed by the relnet layer) =="
go run ./cmd/acic-run -algo acic -kind random -scale 10 -fault lossy -verify
go run -race ./cmd/acic-run -algo acic -kind random -scale 9 -fault lossy -verify

echo "== bench smoke (every listed hot-path benchmark compiles and runs once) =="
go test -run '^$' -bench . -benchtime=1x \
  ./internal/runtime ./internal/netsim ./internal/tram ./internal/bench >/dev/null

echo "== perf regression gate (scripts/bench.sh vs committed baseline) =="
# Compare a fresh variance-aware record against the newest committed
# baseline. cmd/benchdiff fails the stage on a >10% hot-path slowdown or
# any allocs/op regression on a zero-alloc benchmark; noisy (flagged)
# ns/op numbers are reported but never gated.
baseline="$(ls BENCH_*.json | sort -V | tail -1)"
bench_out="$(mktemp)"
trap 'rm -f "$cover_out" "$bench_out"' EXIT
scripts/bench.sh "$bench_out"
go run ./cmd/benchdiff -gate "$baseline" "$bench_out"

echo "== ci green =="
