#!/usr/bin/env bash
# Repository CI gate: vet, build, full test suite, then the race detector
# over the concurrency-heavy packages (messaging fabric + its main client).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== build + test =="
go build ./...
go test ./...

echo "== race detector (runtime, netsim, tram, core) =="
go test -race ./internal/runtime/... ./internal/netsim/... ./internal/tram/... ./internal/core/...

echo "== ci green =="
