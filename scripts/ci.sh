#!/usr/bin/env bash
# Repository CI gate: vet, the project's own analyzers (acic-lint), build,
# full test suite, then the race detector over every package.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== acic-lint (project analyzers) =="
go run ./cmd/acic-lint ./...

echo "== build + test =="
go build ./...
go test ./...

echo "== race detector (all packages) =="
go test -race ./...

echo "== schedule-stress harness (short matrix) =="
go run ./cmd/acic-stress -short
go run -race ./cmd/acic-stress -short -seed 2

echo "== ci green =="
